"""The model zoo: a unified view over SM variants and AC levels.

Argus's scheduler, solver and ODA all reason about *approximation levels*
regardless of whether the active strategy is approximate caching (levels are
K values on the same SD-XL model) or smaller models (levels are distinct
model variants).  :class:`ApproximationLevel` is that common abstraction and
:class:`ModelZoo` builds the ordered level lists for both strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.models.batching import BatchingProfile, batching_speedup_curve
from repro.models.latency import LatencyModel
from repro.models.variants import AC_LEVELS, SM_VARIANTS, AcLevel, ModelVariant


class Strategy(str, Enum):
    """The two approximation strategies Argus switches between."""

    AC = "AC"
    SM = "SM"


@dataclass(frozen=True)
class ApproximationLevel:
    """One point on the quality-latency spectrum of the active strategy.

    Levels are ordered by ``rank``: rank 0 is the least approximate
    (slowest, highest quality); higher ranks are faster and lower quality.
    """

    strategy: Strategy
    name: str
    rank: int
    #: Nominal single-image latency on the cluster's GPU (seconds), excluding
    #: any per-request cache-retrieval overhead.
    latency_s: float
    #: Time to make the level available on a worker (model load for SM; zero
    #: for AC levels beyond the initial SD-XL load).
    switch_cost_s: float
    #: For AC levels: number of denoising steps skipped.  None for SM.
    skip_steps: int | None = None
    #: For SM levels: the underlying model variant name.  None for AC.
    variant_name: str | None = None
    #: GPU memory footprint in GiB of the model that must be resident.
    memory_gib: float = 0.0

    @property
    def model_name(self) -> str:
        """Name of the concrete model that serves this level.

        The single mapping used both for GPU-memory residency and for the
        Fig. 14 batching-profile lookup.
        """
        return self.variant_name or self.name

    @property
    def peak_throughput_qpm(self) -> float:
        """Queries per minute a dedicated worker sustains at this level."""
        return 60.0 / self.latency_s

    @property
    def is_exact(self) -> bool:
        """True for the least-approximate level (rank 0)."""
        return self.rank == 0

    def __str__(self) -> str:
        return f"{self.strategy.value}:{self.name}"


class ModelZoo:
    """Builds and indexes approximation levels for a given GPU."""

    def __init__(self, gpu: str = "A100") -> None:
        self.gpu = gpu
        self.latency_model = LatencyModel(gpu)
        self.batching = self.latency_model.batching
        self._levels: dict[Strategy, tuple[ApproximationLevel, ...]] = {
            Strategy.SM: self._build_sm_levels(),
            Strategy.AC: self._build_ac_levels(),
        }

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_sm_levels(self) -> tuple[ApproximationLevel, ...]:
        levels = []
        for variant in SM_VARIANTS:
            levels.append(
                ApproximationLevel(
                    strategy=Strategy.SM,
                    name=variant.name,
                    rank=variant.approximation_rank,
                    latency_s=self.latency_model.variant_latency(variant),
                    switch_cost_s=variant.load_time_s,
                    variant_name=variant.name,
                    memory_gib=variant.size_gib,
                )
            )
        return tuple(sorted(levels, key=lambda l: l.rank))

    def _build_ac_levels(self) -> tuple[ApproximationLevel, ...]:
        base = SM_VARIANTS[0]  # SD-XL is the AC base model.
        levels = []
        for level in AC_LEVELS:
            levels.append(
                ApproximationLevel(
                    strategy=Strategy.AC,
                    name=level.name,
                    rank=level.approximation_rank,
                    latency_s=self.latency_model.ac_latency(level, base),
                    switch_cost_s=0.0,
                    skip_steps=level.skip_steps,
                    variant_name=base.name,
                    memory_gib=base.size_gib,
                )
            )
        return tuple(sorted(levels, key=lambda l: l.rank))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def levels(self, strategy: Strategy | str) -> tuple[ApproximationLevel, ...]:
        """Ordered approximation levels for ``strategy`` (rank 0 first)."""
        return self._levels[Strategy(strategy)]

    def level(self, strategy: Strategy | str, rank: int) -> ApproximationLevel:
        """Level of the given rank, raising IndexError when out of range."""
        levels = self.levels(strategy)
        if rank < 0 or rank >= len(levels):
            raise IndexError(f"rank {rank} out of range for {strategy} (0..{len(levels) - 1})")
        return levels[rank]

    def level_by_name(self, strategy: Strategy | str, name: str) -> ApproximationLevel:
        """Level with the given display name (case-insensitive)."""
        for level in self.levels(strategy):
            if level.name.lower() == name.lower():
                return level
        raise KeyError(f"no level named {name!r} in strategy {strategy}")

    def num_levels(self, strategy: Strategy | str) -> int:
        """Number of approximation levels available for ``strategy``."""
        return len(self.levels(strategy))

    def fastest_level(self, strategy: Strategy | str) -> ApproximationLevel:
        """The most approximate (fastest) level."""
        return self.levels(strategy)[-1]

    def exact_level(self, strategy: Strategy | str) -> ApproximationLevel:
        """The least approximate (rank-0) level."""
        return self.levels(strategy)[0]

    def sm_variant(self, name: str) -> ModelVariant:
        """Underlying SM variant object by name."""
        for variant in SM_VARIANTS:
            if variant.name.lower() == name.lower():
                return variant
        raise KeyError(f"unknown SM variant {name!r}")

    def ac_level_spec(self, skip_steps: int) -> AcLevel:
        """Underlying AC level spec by skip count."""
        for level in AC_LEVELS:
            if level.skip_steps == skip_steps:
                return level
        raise KeyError(f"unknown AC skip level {skip_steps}")

    def max_cluster_throughput_qpm(
        self, strategy: Strategy | str, num_workers: int, batch_size: int = 1
    ) -> float:
        """Upper bound on cluster QPM with every worker at the fastest level,
        optionally running full ``batch_size`` batches."""
        return self.batched_peak_qpm(self.fastest_level(strategy), batch_size) * num_workers

    # ------------------------------------------------------------------ #
    # Batched execution
    # ------------------------------------------------------------------ #
    def batching_profile(self, level: ApproximationLevel) -> BatchingProfile:
        """Fig. 14 batching profile of the model backing ``level``.

        AC levels run on the SD-XL base, so every K shares its profile; SM
        levels use their own variant's profile (generic-DM fallback for
        variants without a calibrated row).
        """
        return self.batching.profile_or_default(level.model_name)

    def level_speedup(self, level: ApproximationLevel, batch_size: int) -> float:
        """Throughput speed-up of ``level`` when served at ``batch_size``."""
        return batching_speedup_curve(self.batching_profile(level), [batch_size])[0]

    def batched_service_time(self, level: ApproximationLevel, batch_size: int) -> float:
        """Wall-clock seconds one worker spends on a batch at ``level``.

        Delegates to :meth:`BatchingModel.batched_service_time`, the single
        anchoring of the Fig. 14 cost formula on the serving path.
        """
        return self.batching.batched_service_time(
            level.model_name, level.latency_s, batch_size
        )

    def batch_latency_multiplier(self, level: ApproximationLevel, batch_size: int) -> float:
        """Cost of one ``batch_size`` pass relative to a single request."""
        return self.batching.batched_service_time(level.model_name, 1.0, batch_size)

    def batched_peak_qpm(self, level: ApproximationLevel, batch_size: int) -> float:
        """Sustained QPM of a worker running full ``batch_size`` batches."""
        return level.peak_throughput_qpm * self.level_speedup(level, batch_size)
