"""Batching throughput model (Fig. 14, Observation 5).

Traditional discriminative models (YOLO, ResNet, EfficientNet) and the
memory-bound decode phase of LLMs gain near-linear throughput from batching.
Diffusion models are compute-bound, so their speed-up plateaus at small batch
sizes.  This module models both families so the Fig. 14 benchmark can
regenerate the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BatchingProfile:
    """Parameters of the saturating speed-up curve for one model."""

    name: str
    #: Maximum achievable throughput speed-up relative to batch size 1.
    max_speedup: float
    #: Batch size at which half of the maximum speed-up is reached.
    half_saturation_batch: float
    is_diffusion: bool = False


#: Fallback profile for diffusion variants without a calibrated Fig. 14 row
#: (e.g. SD-1.5 / SD-1.4): compute-bound, plateaus between SD-2.0 and
#: Small-SD.
DEFAULT_DIFFUSION_PROFILE = BatchingProfile(
    "generic-DM", max_speedup=1.5, half_saturation_batch=1.8, is_diffusion=True
)

#: Profiles calibrated to Fig. 14: non-DM models keep scaling to batch 16+,
#: diffusion models plateau around batch 2-4.
BATCHING_PROFILES: tuple[BatchingProfile, ...] = (
    BatchingProfile("YOLOv5n", max_speedup=12.0, half_saturation_batch=6.0),
    BatchingProfile("ResNet50", max_speedup=10.0, half_saturation_batch=5.0),
    BatchingProfile("EfficientNet-b4", max_speedup=8.0, half_saturation_batch=5.0),
    BatchingProfile("GPT-8B", max_speedup=6.0, half_saturation_batch=4.0),
    BatchingProfile("Tiny-SD", max_speedup=1.9, half_saturation_batch=2.0, is_diffusion=True),
    BatchingProfile("Small-SD", max_speedup=1.6, half_saturation_batch=2.0, is_diffusion=True),
    BatchingProfile("SD-2.0", max_speedup=1.4, half_saturation_batch=1.8, is_diffusion=True),
    BatchingProfile("SD-XL", max_speedup=1.25, half_saturation_batch=1.5, is_diffusion=True),
)


def batching_speedup_curve(profile: BatchingProfile, batch_sizes: list[int]) -> list[float]:
    """Throughput speed-up at each batch size for ``profile``.

    Uses a Michaelis-Menten style saturating curve anchored at speed-up 1 for
    batch size 1.
    """
    speedups = []
    for batch in batch_sizes:
        if batch < 1:
            raise ValueError("batch size must be >= 1")
        raw = 1.0 + (profile.max_speedup - 1.0) * (batch - 1) / (
            batch - 1 + profile.half_saturation_batch
        )
        speedups.append(min(raw, float(batch)))
    return speedups


class BatchingModel:
    """Convenience wrapper exposing speed-up and latency-per-batch queries."""

    def __init__(self, profiles: tuple[BatchingProfile, ...] = BATCHING_PROFILES) -> None:
        self._profiles = {p.name: p for p in profiles}

    @property
    def model_names(self) -> list[str]:
        """All models with a batching profile."""
        return list(self._profiles)

    def profile(self, name: str) -> BatchingProfile:
        """Profile for ``name``; raises KeyError for unknown models."""
        if name not in self._profiles:
            raise KeyError(f"no batching profile for {name!r}")
        return self._profiles[name]

    def profile_or_default(
        self, name: str, default: BatchingProfile = DEFAULT_DIFFUSION_PROFILE
    ) -> BatchingProfile:
        """Profile for ``name``, falling back to ``default`` when unknown.

        Serving levels reference models by variant name; variants without a
        calibrated Fig. 14 row (SD-1.5, SD-1.4, …) batch like a generic
        compute-bound diffusion model.
        """
        return self._profiles.get(name, default)

    def speedup(self, name: str, batch_size: int) -> float:
        """Throughput speed-up of ``name`` at ``batch_size``."""
        return batching_speedup_curve(self.profile(name), [batch_size])[0]

    def latency_multiplier(self, name: str, batch_size: int) -> float:
        """How much one batch costs relative to a single request."""
        return batch_size / self.speedup(name, batch_size)

    # ------------------------------------------------------------------ #
    # Serving-path queries (dynamic batching execution)
    # ------------------------------------------------------------------ #
    def batched_service_time(
        self, name: str, single_latency_s: float, batch_size: int
    ) -> float:
        """Wall-clock time one worker spends serving a whole batch.

        Anchored so a batch of one costs exactly ``single_latency_s``;
        larger batches cost ``batch / speedup(batch)`` times that, which for
        diffusion profiles grows almost linearly (the Fig. 14 plateau) and
        for discriminative-style profiles grows sub-linearly.
        """
        if single_latency_s < 0:
            raise ValueError("single_latency_s must be non-negative")
        profile = self.profile_or_default(name)
        speedup = batching_speedup_curve(profile, [batch_size])[0]
        return single_latency_s * batch_size / speedup

    def effective_batch_limit(self, name: str, latency_budget_factor: float = 2.0) -> int:
        """Largest batch whose latency stays within ``latency_budget_factor``×
        the single-request latency."""
        for batch in range(1, 65):
            if self.latency_multiplier(name, batch) > latency_budget_factor:
                return max(1, batch - 1)
        return 64

    def table(self, batch_sizes: list[int]) -> dict[str, list[float]]:
        """Speed-up curve of every profiled model (rows of Fig. 14)."""
        return {
            name: batching_speedup_curve(profile, batch_sizes)
            for name, profile in self._profiles.items()
        }

    def diffusion_vs_traditional_gap(self, batch_size: int = 8) -> float:
        """Mean speed-up gap between non-DM and DM models at ``batch_size``."""
        dm = [self.speedup(p.name, batch_size) for p in self._profiles.values() if p.is_diffusion]
        non_dm = [
            self.speedup(p.name, batch_size)
            for p in self._profiles.values()
            if not p.is_diffusion
        ]
        return float(np.mean(non_dm) - np.mean(dm))
