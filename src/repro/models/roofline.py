"""Roofline model (Fig. 15): places DMs and non-DM models on a roofline plot.

A model is compute-bound when its arithmetic intensity exceeds the GPU's
ridge point (peak FLOPs / memory bandwidth); otherwise it is memory-bound.
The paper uses this to argue that diffusion models cannot benefit from
batching the way memory-bound models do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.components import arithmetic_intensity
from repro.models.gpus import GpuSpec, gpu_by_name


@dataclass(frozen=True)
class RooflinePoint:
    """A single model placed on the roofline plot."""

    name: str
    arithmetic_intensity: float
    attainable_tflops: float
    compute_bound: bool


#: Arithmetic intensities (FLOP/byte) for the non-diffusion reference models
#: in Fig. 15.  These sit left of the A100 ridge point (memory-bound) except
#: GPT-8B prefill which is borderline.
NON_DM_INTENSITIES: dict[str, float] = {
    "YOLOv5n": 28.0,
    "ResNet50": 55.0,
    "EfficientNet-b4": 42.0,
    "GPT-8B": 130.0,
}


class RooflineModel:
    """Computes attainable performance and boundedness for models on a GPU."""

    def __init__(self, gpu: str | GpuSpec = "A100") -> None:
        self.gpu = gpu if isinstance(gpu, GpuSpec) else gpu_by_name(gpu)

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity at which the GPU transitions to compute-bound."""
        return self.gpu.ridge_point

    def attainable_tflops(self, intensity: float) -> float:
        """Attainable TFLOP/s at ``intensity`` under the roofline model."""
        if intensity < 0:
            raise ValueError("arithmetic intensity must be non-negative")
        bandwidth_limited = intensity * self.gpu.hbm_bandwidth_gbps * 1e9 / 1e12
        return min(self.gpu.peak_fp16_tflops, bandwidth_limited)

    def is_compute_bound(self, intensity: float) -> bool:
        """Whether a kernel of the given intensity is compute-bound."""
        return intensity >= self.ridge_point

    def place(self, name: str, intensity: float) -> RooflinePoint:
        """Place a named model on the roofline."""
        return RooflinePoint(
            name=name,
            arithmetic_intensity=intensity,
            attainable_tflops=self.attainable_tflops(intensity),
            compute_bound=self.is_compute_bound(intensity),
        )

    def place_diffusion_model(self, model: str) -> RooflinePoint:
        """Place a diffusion model using its UNet-dominated intensity."""
        return self.place(model, arithmetic_intensity(model))

    def full_plot(self) -> list[RooflinePoint]:
        """All points of Fig. 15: diffusion models plus reference models."""
        points = [
            self.place_diffusion_model(model)
            for model in ("Tiny-SD", "Small-SD", "SD-2.0", "SD-XL")
        ]
        points.extend(self.place(name, ai) for name, ai in NON_DM_INTENSITIES.items())
        return points
