"""GPU hardware specifications used by the latency and roofline models.

Peak numbers are the published FP16 tensor throughput and HBM bandwidth for
the three GPU generations the paper profiles (Fig. 5): V100, A10G and A100.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """Static description of a GPU model."""

    name: str
    memory_gib: float
    peak_fp16_tflops: float
    hbm_bandwidth_gbps: float
    #: Relative speed factor used by the latency model; A100 is the reference.
    relative_speed: float
    #: On-demand price of one GPU (cloud list price), for cost accounting.
    hourly_cost_usd: float = 0.0

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (FLOP/byte) at which compute becomes the limit."""
        return (self.peak_fp16_tflops * 1e12) / (self.hbm_bandwidth_gbps * 1e9)


GPU_SPECS: dict[str, GpuSpec] = {
    "A100": GpuSpec(
        name="A100",
        memory_gib=80.0,
        peak_fp16_tflops=312.0,
        hbm_bandwidth_gbps=2039.0,
        relative_speed=1.0,
        hourly_cost_usd=4.10,
    ),
    "A10G": GpuSpec(
        name="A10G",
        memory_gib=24.0,
        peak_fp16_tflops=125.0,
        hbm_bandwidth_gbps=600.0,
        relative_speed=0.42,
        hourly_cost_usd=1.21,
    ),
    "V100": GpuSpec(
        name="V100",
        memory_gib=32.0,
        peak_fp16_tflops=112.0,
        hbm_bandwidth_gbps=900.0,
        relative_speed=0.38,
        hourly_cost_usd=3.06,
    ),
}


def gpu_by_name(name: str) -> GpuSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    key = name.upper()
    if key not in GPU_SPECS:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(GPU_SPECS)}")
    return GPU_SPECS[key]
