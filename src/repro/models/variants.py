"""Registry of model variants and approximate-caching levels.

The paper's SM strategy uses six variants ordered from slowest / highest
quality (SD-XL) to fastest / lowest quality (Tiny-SD); the AC strategy keeps
SD-XL loaded and skips the first ``K`` of 50 denoising steps,
K ∈ {0, 5, 10, 15, 20, 25}.  Latencies and sizes come from Table 2 and §5.1
of the paper (A100, FP16).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Total denoising steps for the base SD-XL model (§5.1).
TOTAL_DIFFUSION_STEPS = 50


@dataclass(frozen=True)
class ModelVariant:
    """A distilled / smaller diffusion-model variant (SM strategy)."""

    name: str
    #: Position in the approximation order: 0 = least approximate (SD-XL).
    approximation_rank: int
    parameters_billion: float
    size_gib: float
    #: Inference latency for one 768x768 image on an A100 (seconds, Table 2).
    latency_a100_s: float
    #: Wall-clock time to load the model onto a GPU (seconds, Table 2
    #: "Accelerate" column, which the deployment uses).
    load_time_s: float
    denoising_steps: int = TOTAL_DIFFUSION_STEPS

    @property
    def peak_throughput_qpm(self) -> float:
        """Images per minute a single dedicated worker can sustain."""
        return 60.0 / self.latency_a100_s

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AcLevel:
    """An approximate-caching level: skip the first ``skip_steps`` steps."""

    name: str
    #: Position in the approximation order: 0 = K=0 (no approximation).
    approximation_rank: int
    skip_steps: int
    #: End-to-end latency on an A100 including retrieval at nominal network
    #: conditions (seconds); K=0 matches the SD-XL base latency of 4.2 s and
    #: higher K values follow Fig. 6 ((N-K)/N scaling plus fixed overhead).
    latency_a100_s: float
    #: Size of the cached intermediate noise state fetched per request (KiB).
    state_size_kib: float = 144.0

    @property
    def kept_steps(self) -> int:
        """Number of denoising steps actually executed."""
        return TOTAL_DIFFUSION_STEPS - self.skip_steps

    @property
    def peak_throughput_qpm(self) -> float:
        """Images per minute a single dedicated worker can sustain."""
        return 60.0 / self.latency_a100_s

    def __str__(self) -> str:
        return self.name


def _ac_latency(skip_steps: int, base_latency: float = 4.2, overhead: float = 0.12) -> float:
    """Latency of SD-XL with the first ``skip_steps`` steps skipped."""
    fraction = (TOTAL_DIFFUSION_STEPS - skip_steps) / TOTAL_DIFFUSION_STEPS
    if skip_steps == 0:
        return base_latency
    return round(base_latency * fraction + overhead, 3)


#: SM variants, ordered from least approximate to most approximate.
SM_VARIANTS: tuple[ModelVariant, ...] = (
    ModelVariant("SD-XL", 0, parameters_billion=2.74, size_gib=5.14,
                 latency_a100_s=4.20, load_time_s=9.42),
    ModelVariant("SD-2.0", 1, parameters_billion=1.26, size_gib=3.44,
                 latency_a100_s=3.84, load_time_s=5.56),
    ModelVariant("SD-1.5", 2, parameters_billion=1.07, size_gib=3.44,
                 latency_a100_s=3.60, load_time_s=5.56),
    ModelVariant("SD-1.4", 3, parameters_billion=1.07, size_gib=3.40,
                 latency_a100_s=3.45, load_time_s=5.40),
    ModelVariant("Small-SD", 4, parameters_billion=0.75, size_gib=2.32,
                 latency_a100_s=2.75, load_time_s=4.86),
    ModelVariant("Tiny-SD", 5, parameters_billion=0.50, size_gib=0.63,
                 latency_a100_s=2.18, load_time_s=2.91),
)

#: AC levels, ordered from least approximate (K=0) to most approximate (K=25).
AC_LEVELS: tuple[AcLevel, ...] = tuple(
    AcLevel(
        name=f"K={skip}",
        approximation_rank=rank,
        skip_steps=skip,
        latency_a100_s=_ac_latency(skip),
    )
    for rank, skip in enumerate((0, 5, 10, 15, 20, 25))
)


_VARIANTS_BY_NAME = {variant.name.lower(): variant for variant in SM_VARIANTS}
_AC_BY_SKIP = {level.skip_steps: level for level in AC_LEVELS}


def variant_by_name(name: str) -> ModelVariant:
    """Look up an SM variant by name (case-insensitive)."""
    key = name.lower()
    if key not in _VARIANTS_BY_NAME:
        raise KeyError(f"unknown model variant {name!r}; known: {[v.name for v in SM_VARIANTS]}")
    return _VARIANTS_BY_NAME[key]


def ac_level_by_skip(skip_steps: int) -> AcLevel:
    """Look up an AC level by the number of skipped steps."""
    if skip_steps not in _AC_BY_SKIP:
        raise KeyError(
            f"unknown AC skip level {skip_steps}; known: {sorted(_AC_BY_SKIP)}"
        )
    return _AC_BY_SKIP[skip_steps]
