"""Latency model for diffusion-model inference.

Latency is decomposed the way the paper measures it: a per-step UNet cost
that dominates, plus fixed text-encoder and VAE-decoder costs.  The model is
calibrated so that full 50-step generation on an A100 matches Table 2 /
Fig. 5 and scales across GPUs with the relative-speed factors in
:mod:`repro.models.gpus`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.batching import BatchingModel
from repro.models.gpus import GPU_SPECS, GpuSpec, gpu_by_name
from repro.models.variants import (
    TOTAL_DIFFUSION_STEPS,
    AcLevel,
    ModelVariant,
)

#: Fraction of total generation time spent in the iterative UNet (paper: >90%).
_UNET_TIME_FRACTION = 0.92


@dataclass(frozen=True)
class LatencyBreakdown:
    """Decomposed latency of a single image generation, in seconds."""

    text_encoder_s: float
    unet_s: float
    vae_decoder_s: float
    retrieval_s: float = 0.0

    @property
    def total_s(self) -> float:
        """End-to-end latency in seconds."""
        return self.text_encoder_s + self.unet_s + self.vae_decoder_s + self.retrieval_s


class LatencyModel:
    """Predicts single-image inference latency for variants and AC levels."""

    def __init__(
        self, gpu: str | GpuSpec = "A100", batching: BatchingModel | None = None
    ) -> None:
        self.gpu = gpu if isinstance(gpu, GpuSpec) else gpu_by_name(gpu)
        self.batching = batching or BatchingModel()

    # ------------------------------------------------------------------ #
    # SM variants
    # ------------------------------------------------------------------ #
    def variant_latency(self, variant: ModelVariant, batch_size: int = 1) -> float:
        """Latency (seconds) for one batch of ``batch_size`` prompts."""
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        base = variant.latency_a100_s / self.gpu.relative_speed
        if batch_size == 1:
            return base
        return self.batching.batched_service_time(variant.name, base, batch_size)

    def variant_breakdown(self, variant: ModelVariant) -> LatencyBreakdown:
        """Split the single-image latency into component contributions."""
        total = self.variant_latency(variant)
        unet = total * _UNET_TIME_FRACTION
        rest = total - unet
        return LatencyBreakdown(
            text_encoder_s=rest * 0.3,
            unet_s=unet,
            vae_decoder_s=rest * 0.7,
        )

    # ------------------------------------------------------------------ #
    # AC levels
    # ------------------------------------------------------------------ #
    def ac_latency(
        self,
        level: AcLevel,
        base_variant: ModelVariant,
        retrieval_latency_s: float = 0.0,
    ) -> float:
        """Latency for SD-XL resumed from step ``level.skip_steps``.

        ``retrieval_latency_s`` is the observed cache-retrieval time for this
        request (zero for K=0, which never touches the cache).
        """
        full = self.variant_latency(base_variant)
        unet_full = full * _UNET_TIME_FRACTION
        fixed = full - unet_full
        unet = unet_full * level.kept_steps / TOTAL_DIFFUSION_STEPS
        retrieval = retrieval_latency_s if level.skip_steps > 0 else 0.0
        return fixed + unet + retrieval

    def ac_breakdown(
        self,
        level: AcLevel,
        base_variant: ModelVariant,
        retrieval_latency_s: float = 0.0,
    ) -> LatencyBreakdown:
        """Component breakdown for an AC generation."""
        full = self.variant_latency(base_variant)
        unet_full = full * _UNET_TIME_FRACTION
        fixed = full - unet_full
        unet = unet_full * level.kept_steps / TOTAL_DIFFUSION_STEPS
        retrieval = retrieval_latency_s if level.skip_steps > 0 else 0.0
        return LatencyBreakdown(
            text_encoder_s=fixed * 0.3,
            unet_s=unet,
            vae_decoder_s=fixed * 0.7,
            retrieval_s=retrieval,
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def latency_matrix(self, variants: list[ModelVariant]) -> dict[str, dict[str, float]]:
        """Latency of each variant on every known GPU (Fig. 5)."""
        matrix: dict[str, dict[str, float]] = {}
        for gpu_name, spec in GPU_SPECS.items():
            model = LatencyModel(spec)
            matrix[gpu_name] = {v.name: model.variant_latency(v) for v in variants}
        return matrix
