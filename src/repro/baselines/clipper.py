"""Clipper baselines: static single-model serving (§5.1).

Clipper requires the operator to pick the model; the paper evaluates two
configurations — Clipper-HA runs the most accurate SD-XL model on every GPU,
Clipper-HT runs the fastest Tiny-SD model on every GPU.  Neither adapts to
load; routing is least-loaded across the homogeneous workers.
"""

from __future__ import annotations

from repro.core.base import BaseServingSystem, Route
from repro.core.config import ArgusConfig
from repro.models.zoo import ApproximationLevel, Strategy
from repro.prompts.generator import Prompt


class ClipperSystem(BaseServingSystem):
    """Static single-model serving system."""

    def __init__(self, mode: str = "HA", config: ArgusConfig | None = None, **kwargs) -> None:
        mode = mode.upper()
        if mode not in ("HA", "HT"):
            raise ValueError("Clipper mode must be 'HA' (high accuracy) or 'HT' (high throughput)")
        self.mode = mode
        self.name = f"Clipper-{mode}"
        config = config or ArgusConfig()
        config.default_strategy = Strategy.SM
        super().__init__(config=config, use_cache=False, **kwargs)

    def default_initial_level(self) -> ApproximationLevel:
        """SD-XL for HA, the fastest variant (Tiny-SD) for HT."""
        levels = self.zoo.levels(Strategy.SM)
        return levels[0] if self.mode == "HA" else levels[-1]

    def route(self, prompt: Prompt) -> Route | None:
        """Least-loaded routing across the homogeneous workers."""
        healthy = self.cluster.healthy_workers
        if not healthy:
            return None
        worker = min(healthy, key=lambda w: (w.outstanding, w.worker_id))
        rank = worker.level.rank
        return Route(
            worker_id=worker.worker_id,
            predicted_rank=rank,
            assigned_rank=rank,
            strategy=Strategy.SM,
        )
