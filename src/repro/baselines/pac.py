"""PAC: Prompt-Agnostic Argus (the paper's own ablation, §5.1).

PAC keeps everything else in Argus — the load-aware ILP allocation and the
AC/SM strategy switching — but removes the per-prompt classifier and the
ODA, so prompts are routed to approximation levels in proportion to the load
split alone.
"""

from __future__ import annotations

from repro.core.config import ArgusConfig
from repro.core.system import ArgusSystem
from repro.prompts.dataset import PromptDataset


class PacSystem(ArgusSystem):
    """Prompt-agnostic variant of Argus."""

    name = "PAC"

    def __init__(
        self,
        config: ArgusConfig | None = None,
        training_dataset: PromptDataset | None = None,
        **kwargs,
    ) -> None:
        super().__init__(
            config=config,
            prompt_aware=False,
            allow_strategy_switching=True,
            training_dataset=training_dataset,
            **kwargs,
        )
        self.name = "PAC"
