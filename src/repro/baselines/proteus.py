"""Proteus baseline: accuracy scaling over smaller models, prompt-agnostic.

Proteus distributes traffic across multiple distilled/smaller model variants
to meet throughput, but treats model accuracy as uniform across inputs: the
fraction of traffic sent to each variant depends only on the load, not on
the individual prompt.  It never uses approximate caching.

This maps exactly onto the Argus machinery with the classifier and ODA
disabled, the strategy pinned to SM and the cache removed — which is also
how the paper implements its baselines ("Baselines are implemented using
Proteus").
"""

from __future__ import annotations

from repro.core.config import ArgusConfig
from repro.core.system import ArgusSystem
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset


class ProteusSystem(ArgusSystem):
    """Load-aware, prompt-agnostic accuracy scaling over SM variants."""

    name = "Proteus"

    def __init__(
        self,
        config: ArgusConfig | None = None,
        training_dataset: PromptDataset | None = None,
        **kwargs,
    ) -> None:
        config = config or ArgusConfig()
        config.default_strategy = Strategy.SM
        config.blocking_model_loads = True
        super().__init__(
            config=config,
            prompt_aware=False,
            allow_strategy_switching=False,
            training_dataset=training_dataset,
            use_cache=False,
            **kwargs,
        )
        self.name = "Proteus"
