"""NIRVANA baseline: per-prompt approximate caching without load adaptation.

NIRVANA picks the reuse level K per prompt (prompt-aware, like Argus's AC
classifier) but the original system is a single-instance design; the paper
extends it to the cluster by replicating it on every worker and spreading
load uniformly.  Crucially it never trades quality for throughput under
load, so queues grow and SLO violations spike at high load.
"""

from __future__ import annotations

import numpy as np

from repro.classifier.trainer import ClassifierTrainer
from repro.core.base import BaseServingSystem, Route
from repro.core.config import ArgusConfig
from repro.models.zoo import ApproximationLevel, Strategy
from repro.prompts.dataset import PromptDataset
from repro.prompts.generator import Prompt


class NirvanaSystem(BaseServingSystem):
    """Cluster-replicated NIRVANA with uniform load spreading."""

    name = "NIRVANA"
    #: The original NIRVANA is a single-request pipeline (one retrieval +
    #: one resume per pass); replicating it across the cluster does not give
    #: it a batched execution path.
    supports_batching = False

    def __init__(
        self,
        config: ArgusConfig | None = None,
        training_dataset: PromptDataset | None = None,
        **kwargs,
    ) -> None:
        config = config or ArgusConfig()
        config.default_strategy = Strategy.AC
        super().__init__(config=config, use_cache=True, **kwargs)
        dataset = training_dataset or PromptDataset.synthetic(
            count=self.config.classifier_training_prompts, seed=self.config.seed + 101
        )
        trainer = ClassifierTrainer(self.pickscore)
        self.predictor = trainer.train(
            dataset.prompts, Strategy.AC, epochs=self.config.classifier_epochs,
            seed=self.config.seed,
        )
        self._rng = np.random.default_rng(self.config.seed + 13)
        for worker in self.cluster.workers:
            worker.honor_request_rank = True
        if self.cache is not None and self.config.cache_warm_prompts > 0:
            self.cache.warm(dataset.prompts[: self.config.cache_warm_prompts])

    def default_initial_level(self) -> ApproximationLevel:
        """Every worker keeps the SD-XL base loaded (AC operates on it)."""
        return self.zoo.exact_level(Strategy.AC)

    def route(self, prompt: Prompt) -> Route | None:
        """Per-prompt K from the classifier, uniform worker selection."""
        healthy = self.cluster.healthy_workers
        if not healthy:
            return None
        predicted = int(
            np.clip(self.predictor.predict_rank(prompt), 0, self.zoo.num_levels(Strategy.AC) - 1)
        )
        worker = healthy[int(self._rng.integers(0, len(healthy)))]
        return Route(
            worker_id=worker.worker_id,
            predicted_rank=predicted,
            assigned_rank=predicted,
            strategy=Strategy.AC,
        )
