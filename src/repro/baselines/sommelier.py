"""Sommelier baseline: per-GPU model selection.

Sommelier curates models at the level of an individual server rather than
the cluster: each GPU watches its own recent load and swaps to a faster
variant when its queue builds up, or back to a more accurate variant when it
has headroom.  Routing across GPUs is least-loaded; there is no cluster-wide
optimisation, no prompt awareness and no approximate caching.
"""

from __future__ import annotations

from repro.core.base import BaseServingSystem, Route
from repro.core.config import ArgusConfig
from repro.models.zoo import ApproximationLevel, Strategy
from repro.prompts.generator import Prompt
from repro.simulation.engine import SimulationEngine


class SommelierSystem(BaseServingSystem):
    """Per-GPU workload assessment and model switching."""

    name = "Sommelier"

    def __init__(
        self,
        config: ArgusConfig | None = None,
        adjustment_interval_s: float = 60.0,
        upscale_queue_threshold: int = 4,
        downscale_queue_threshold: int = 1,
        **kwargs,
    ) -> None:
        config = config or ArgusConfig()
        config.default_strategy = Strategy.SM
        config.blocking_model_loads = True
        super().__init__(config=config, use_cache=False, **kwargs)
        self.adjustment_interval_s = float(adjustment_interval_s)
        self.upscale_queue_threshold = int(upscale_queue_threshold)
        self.downscale_queue_threshold = int(downscale_queue_threshold)

    def default_initial_level(self) -> ApproximationLevel:
        """Start every GPU on the most accurate variant."""
        return self.zoo.exact_level(Strategy.SM)

    # ------------------------------------------------------------------ #
    # Per-GPU adjustment loop
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Install the per-GPU workload assessment loop."""

        def adjust(engine: SimulationEngine) -> None:
            levels = self.zoo.levels(Strategy.SM)
            for worker in self.cluster.healthy_workers:
                rank = worker.level.rank
                if worker.outstanding >= self.upscale_queue_threshold and rank < len(levels) - 1:
                    worker.set_level(levels[rank + 1])
                elif worker.outstanding <= self.downscale_queue_threshold and rank > 0:
                    worker.set_level(levels[rank - 1])

        self.engine.schedule_every(self.adjustment_interval_s, adjust, name="sommelier-adjust")

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(self, prompt: Prompt) -> Route | None:
        """Least expected wait across heterogeneous workers."""
        healthy = self.cluster.healthy_workers
        if not healthy:
            return None
        worker = min(
            healthy, key=lambda w: (w.outstanding * w.level.latency_s, w.worker_id)
        )
        rank = worker.level.rank
        return Route(
            worker_id=worker.worker_id,
            predicted_rank=rank,
            assigned_rank=rank,
            strategy=Strategy.SM,
        )
