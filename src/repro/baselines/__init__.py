"""Baseline serving systems the paper compares against (§5.1).

* Clipper-HA / Clipper-HT — static single-model deployments (largest /
  smallest model on every GPU).
* Proteus — multi-model accuracy scaling with prompt-agnostic routing.
* Sommelier — per-GPU model selection based on each GPU's own load.
* NIRVANA — per-prompt approximate-caching on every worker, replicated
  across the cluster with uniform load spreading and no load adaptation.
* PAC — the prompt-agnostic Argus ablation (exposed here for convenience;
  it is ``ArgusSystem(prompt_aware=False)``).
"""

from repro.baselines.clipper import ClipperSystem
from repro.baselines.nirvana import NirvanaSystem
from repro.baselines.proteus import ProteusSystem
from repro.baselines.sommelier import SommelierSystem
from repro.baselines.pac import PacSystem

__all__ = [
    "ClipperSystem",
    "NirvanaSystem",
    "PacSystem",
    "ProteusSystem",
    "SommelierSystem",
]
