"""Deterministic random streams for reproducible simulations.

Every stochastic component (arrival process, network jitter, quality noise,
classifier noise, ...) draws from its own named stream so that changing how
one component consumes randomness does not perturb the others.
"""

from __future__ import annotations

import hashlib

import numpy as np


def stable_hash(text: str, *, bits: int = 64) -> int:
    """Return a platform-stable integer hash of ``text``.

    Python's built-in ``hash`` is salted per process, which would break
    reproducibility across runs; this helper uses blake2b instead.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=16).digest()
    value = int.from_bytes(digest, "big")
    return value % (1 << bits)


class RandomStreams:
    """A registry of named, independently seeded numpy generators."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Base seed from which every named stream is derived."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if name not in self._streams:
            derived = (self._seed * 0x9E3779B97F4A7C15 + stable_hash(name)) % (1 << 63)
            self._streams[name] = np.random.default_rng(derived)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child registry, e.g. per simulation run."""
        derived = (self._seed * 0x9E3779B97F4A7C15 + stable_hash(name)) % (1 << 63)
        return RandomStreams(seed=derived)

    def reset(self) -> None:
        """Drop all streams so they are re-created from the base seed."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
