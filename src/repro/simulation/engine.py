"""The discrete-event simulation core.

The engine keeps a priority queue of ``(time, sequence, event)`` tuples
ordered by simulated time.  Running the engine repeatedly pops the earliest
entry, advances the clock to its timestamp and invokes its callback.
Callbacks may schedule further events.  Ties are broken by insertion order
(the unique sequence number — the :class:`Event` handle itself is never
compared) so runs are fully deterministic.

Plain tuples keep the heap hot path cheap at 10^6+ events: tuple comparison
is a C-level ``(float, int)`` compare, where the previous ``order=True``
dataclass dispatched ``__lt__`` through Python per sift step.  The
:class:`Event` handle is a ``__slots__`` object used only for cancellation
and introspection.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.simulation.clock import Clock
from repro.simulation.randomness import RandomStreams


class Event:
    """A scheduled callback (handle returned by the ``schedule_*`` family)."""

    __slots__ = ("time", "sequence", "callback", "name", "cancelled", "executed", "_engine")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[["SimulationEngine"], None],
        name: str = "",
        engine: "SimulationEngine | None" = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.name = name
        self.cancelled = False
        self.executed = False
        self._engine = engine

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Cancelling a handle whose event already ran is a harmless no-op
        (it must not disturb the engine's live-event counter).
        """
        if not self.cancelled:
            self.cancelled = True
            if not self.executed and self._engine is not None:
                self._engine._live_events -= 1


class SimulationEngine:
    """Deterministic discrete-event simulation loop."""

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.clock = Clock(start=start_time)
        self.random = RandomStreams(seed=seed)
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._halted = False
        #: Scheduled-and-not-yet-cancelled events (kept live so
        #: :attr:`pending_events` is O(1) instead of a heap scan).
        self._live_events = 0

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule_at(
        self,
        time: float,
        callback: Callable[["SimulationEngine"], None],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self.clock.time:
            raise ValueError(
                f"cannot schedule event in the past: {time:.6f} < {self.clock.time:.6f}"
            )
        time = float(time)
        sequence = next(self._sequence)
        event = Event(time, sequence, callback, name, engine=self)
        heapq.heappush(self._heap, (time, sequence, event))
        self._live_events += 1
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[["SimulationEngine"], None],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.clock.time + delay, callback, name=name)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[["SimulationEngine"], None],
        name: str = "",
        start_delay: float | None = None,
    ) -> None:
        """Schedule ``callback`` periodically until the simulation ends."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        first_delay = interval if start_delay is None else start_delay

        def tick(engine: "SimulationEngine") -> None:
            callback(engine)
            engine.schedule_in(interval, tick, name=name)

        self.schedule_in(first_delay, tick, name=name)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def halt(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._halted = True

    def step(self) -> bool:
        """Process a single event.  Returns False when the queue is empty."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.executed = True
            self._live_events -= 1
            self.clock.advance_to(time)
            event.callback(self)
            self._events_processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run until the queue drains, ``until`` is reached, or limits hit.

        Args:
            until: stop once the next event would be strictly after this time
                (the clock is advanced to ``until`` if it was earlier).
            max_events: safety bound on the number of events processed.

        Returns:
            The number of events processed by this call.
        """
        processed = 0
        self._halted = False
        while self._heap and not self._halted:
            if max_events is not None and processed >= max_events:
                break
            next_time = self._peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            if not self.step():
                break
            processed += 1
        if until is not None and until > self.clock.time:
            self.clock.advance_to(until)
        return processed

    def _peek_time(self) -> float | None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.time

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events.  O(1)."""
        return self._live_events

    @property
    def events_processed(self) -> int:
        """Total number of events executed since construction."""
        return self._events_processed

    def rng(self, name: str) -> Any:
        """Convenience accessor for a named random stream."""
        return self.random.stream(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationEngine(t={self.clock.time:.2f}s, "
            f"pending={self.pending_events}, processed={self._events_processed})"
        )
