"""Discrete-event simulation engine used by every Argus substrate.

The engine is deliberately small: an event heap keyed by simulated time, a
clock, and named deterministic random streams.  Higher-level substrates
(cluster workers, the allocator loop, the network model) schedule callbacks
on a shared :class:`SimulationEngine` instance.
"""

from repro.simulation.clock import Clock
from repro.simulation.engine import Event, SimulationEngine
from repro.simulation.randomness import RandomStreams, stable_hash

__all__ = [
    "Clock",
    "Event",
    "SimulationEngine",
    "RandomStreams",
    "stable_hash",
]
