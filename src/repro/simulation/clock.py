"""Simulated wall-clock used by the discrete-event engine."""

from __future__ import annotations


class Clock:
    """Monotonically non-decreasing simulated time, in seconds.

    The clock is advanced only by the simulation engine; user code reads it
    through :meth:`now` (or the :attr:`time` property) and never sets it
    directly.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start at a negative time")
        self._time = float(start)

    @property
    def time(self) -> float:
        """Current simulated time in seconds."""
        return self._time

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._time

    def now_minutes(self) -> float:
        """Return the current simulated time in minutes."""
        return self._time / 60.0

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            ValueError: if ``timestamp`` is earlier than the current time.
        """
        if timestamp < self._time:
            raise ValueError(
                f"cannot move clock backwards: {timestamp:.6f} < {self._time:.6f}"
            )
        self._time = float(timestamp)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, typically between independent simulation runs."""
        if start < 0:
            raise ValueError("clock cannot be reset to a negative time")
        self._time = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(t={self._time:.3f}s)"
