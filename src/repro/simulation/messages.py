"""Serializable message types crossing shard process boundaries.

Sharded execution (:mod:`repro.simulation.shard`) replaces the shared object
graph between the coordinator and each shard's serving system with explicit
messages: control messages drive the conservative time-window barrier
(``RunWindow`` down, ``BarrierReached`` up), ``ScaleRequest``/``ScaleOutcomes``
carry the budget-brokered autoscaling exchange at epoch boundaries,
``StealRequest``/``StolenWork``/``WorkTransfer`` migrate admission-queue
tails between shards, ``Finalize``/``ShardResult`` close a run, and the
data-plane records (``DispatchMessage``, ``CompletionMessage``,
``RequeueMessage``) describe every request movement when a shard runs with
message recording on (the parity and conservation tests drive that mode).

Every message round-trips through a plain ``dict`` via :func:`encode` /
:func:`decode` — a ``kind``-tagged registry, no pickle-only payloads except
the numpy columns inside ``ShardResult``'s collector snapshot, which encode
to lists and decode back to typed arrays.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

import numpy as np

_REGISTRY: dict[str, type] = {}

#: Dtypes of the numpy columns inside a collector snapshot (see
#: :meth:`repro.metrics.collector.MetricsCollector.export_state`).
_STATE_DTYPES = {
    "lat": np.float64,
    "pick": np.float64,
    "best": np.float64,
    "relq": np.float64,
    "minute": np.int64,
    "tenant_col": np.int32,
}


def _register(cls):
    """Class decorator adding ``cls`` to the kind registry."""
    if cls.kind in _REGISTRY:
        raise ValueError(f"duplicate message kind {cls.kind!r}")
    _REGISTRY[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class Message:
    """Base class: a frozen record with a ``kind`` tag and a dict form."""

    kind = "message"

    def encode(self) -> dict:
        """Plain-dict form (JSON-compatible except where documented)."""
        payload = self._payload()
        payload["kind"] = self.kind
        return payload

    def _payload(self) -> dict:
        return asdict(self)

    @classmethod
    def _from_payload(cls, payload: dict) -> "Message":
        return cls(**payload)


def encode(message: Message) -> dict:
    """Encode any message to its kind-tagged dict form."""
    return message.encode()


def decode(payload: "dict | Message") -> Message:
    """Rebuild a message from its kind-tagged dict form.

    A :class:`Message` instance passes through unchanged: transports that
    can carry typed objects natively (the shard pipes, which pickle) send
    the message itself to skip list-ifying multi-million-row collector
    columns; the dict form remains the canonical serializable encoding.
    """
    if isinstance(payload, Message):
        return payload
    kind = payload["kind"]
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise ValueError(f"unknown message kind {kind!r}; known: {sorted(_REGISTRY)}") from None
    data = {key: value for key, value in payload.items() if key != "kind"}
    return cls._from_payload(data)


# --------------------------------------------------------------------------- #
# Control plane: barrier protocol
# --------------------------------------------------------------------------- #


@_register
@dataclass(frozen=True)
class RunWindow(Message):
    """Coordinator -> shard: advance your event loop to ``window_end_s``.

    The shard processes every event at or before the window end, advances
    its clock to exactly the window end (even with an empty heap — the
    conservative barrier), and answers with :class:`BarrierReached`.
    """

    kind = "run_window"
    window_end_s: float
    #: True when the window ends on an ``autoscale_epoch_s`` grid point:
    #: the shard must ship its pending scale requests in the barrier reply
    #: and will receive a :class:`ScaleOutcomes` before the next window.
    epoch_boundary: bool = False


@_register
@dataclass(frozen=True)
class MetricsDelta(Message):
    """What one shard's collector accumulated during one barrier window."""

    kind = "metrics_delta"
    shard_id: int
    window_end_s: float
    arrivals: int
    completions: int
    dropped: int
    slo_violations: int


@_register
@dataclass(frozen=True)
class FleetDelta(Message):
    """One shard's fleet movement during one barrier window."""

    kind = "fleet_delta"
    shard_id: int
    window_end_s: float
    #: Workers in rotation at the barrier.
    active_workers: int
    workers_added: int
    workers_retired: int
    model_loads: int
    #: Workers provisioned but not yet in rotation at the barrier.
    provisioning_workers: int = 0
    #: Workers in the FAILED state at the barrier (still owned by the shard
    #: — they may recover — so the broker ledger keeps counting them).
    failed_workers: int = 0


@_register
@dataclass(frozen=True)
class ScaleRequest(Message):
    """One shard autoscaler ask, brokered by the coordinator.

    ``seq`` is the shard-local emission sequence; the broker grants in
    (shard id, seq) order, which is what makes N-shard autoscaled runs
    reproducible regardless of process timing.
    """

    kind = "scale_request"
    seq: int
    action: str  # "scale_out" | "scale_in"
    time_s: float
    #: Workers asked for (scale_out) or offered back (scale_in, always 1).
    count: int
    reason: str = ""


@_register
@dataclass(frozen=True)
class ScaleOutcome(Message):
    """The broker's answer to one :class:`ScaleRequest`."""

    kind = "scale_outcome"
    seq: int
    action: str
    #: Workers granted (0 = denied outright).
    granted: int
    #: GPU types for granted scale-out workers, assigned from the *global*
    #: ``gpu_mix`` cycle so the fleet mix matches a sequential deployment.
    gpus: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "gpus", tuple(self.gpus))


@_register
@dataclass(frozen=True)
class ScaleOutcomes(Message):
    """Coordinator -> shard: all grant decisions for one epoch boundary.

    Sent to *every* shard at every epoch boundary (possibly with an empty
    outcome list), so the barrier protocol stays lockstep and
    window-invariant.  The shard applies grants at exactly the epoch time
    before running its next window.
    """

    kind = "scale_outcomes"
    window_end_s: float
    outcomes: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "outcomes", tuple(self.outcomes))

    def _payload(self) -> dict:
        return {
            "window_end_s": self.window_end_s,
            "outcomes": [outcome.encode() for outcome in self.outcomes],
        }

    @classmethod
    def _from_payload(cls, payload: dict) -> "ScaleOutcomes":
        data = dict(payload)
        data["outcomes"] = tuple(
            outcome if isinstance(outcome, ScaleOutcome) else decode(dict(outcome))
            for outcome in data.get("outcomes", ())
        )
        return cls(**data)


@_register
@dataclass(frozen=True)
class BarrierReached(Message):
    """Shard -> coordinator: clock is at the window end; here are my deltas."""

    kind = "barrier_reached"
    shard_id: int
    window_end_s: float
    metrics: MetricsDelta
    fleet: FleetDelta
    #: Pending autoscaler asks, shipped only at epoch boundaries.
    scale_requests: tuple = ()
    #: Requests queued (not yet admitted) at fair-share admission.
    admission_backlog: int = 0
    #: Requests waiting in worker queues (in-flight batches excluded).
    worker_backlog: int = 0
    #: Scale-in grants the shard skipped at apply time since the last
    #: barrier (drain candidate failed meanwhile); the coordinator adds the
    #: count back to the broker's committed ledger.
    unapplied_scale_ins: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "scale_requests", tuple(self.scale_requests))

    def _payload(self) -> dict:
        payload = asdict(self)
        payload["scale_requests"] = [request.encode() for request in self.scale_requests]
        return payload

    @classmethod
    def _from_payload(cls, payload: dict) -> "BarrierReached":
        data = dict(payload)
        metrics = dict(data["metrics"])
        fleet = dict(data["fleet"])
        metrics.pop("kind", None)
        fleet.pop("kind", None)
        data["metrics"] = MetricsDelta(**metrics)
        data["fleet"] = FleetDelta(**fleet)
        data["scale_requests"] = tuple(
            request if isinstance(request, ScaleRequest) else decode(dict(request))
            for request in data.get("scale_requests", ())
        )
        return cls(**data)


@_register
@dataclass(frozen=True)
class Finalize(Message):
    """Coordinator -> shard: the run is over; reply with a ShardResult."""

    kind = "finalize"


# --------------------------------------------------------------------------- #
# Data plane: per-request movement records (message-recording mode)
# --------------------------------------------------------------------------- #


@_register
@dataclass(frozen=True)
class DispatchMessage(Message):
    """One request handed to a worker queue."""

    kind = "dispatch"
    shard_id: int
    request_id: int
    worker_id: int
    time_s: float
    tenant: str
    prompt_id: int
    predicted_rank: int
    assigned_rank: int
    strategy: str


@_register
@dataclass(frozen=True)
class CompletionMessage(Message):
    """One request served to completion."""

    kind = "completion"
    shard_id: int
    request_id: int
    worker_id: int
    completion_time_s: float
    latency_s: float
    effective_rank: int
    cache_hit: bool


@_register
@dataclass(frozen=True)
class RequeueMessage(Message):
    """One request orphaned by its worker and handed back for re-routing."""

    kind = "requeue"
    shard_id: int
    request_id: int
    time_s: float
    tenant: str


# --------------------------------------------------------------------------- #
# Cross-shard work stealing (admission-queue tail migration)
# --------------------------------------------------------------------------- #


@_register
@dataclass(frozen=True)
class StealRequest(Message):
    """Coordinator -> source shard: give up to ``count`` queued requests.

    Only admission-queue tails move — requests already dispatched to worker
    queues or in flight in a batch stay where they are.
    """

    kind = "steal_request"
    window_end_s: float
    count: int


@_register
@dataclass(frozen=True)
class StolenWork(Message):
    """Source shard -> coordinator: the migrated admission-queue entries.

    Each entry is ``{"tenant", "offer_time_s", "prompt": {...Prompt fields}}``
    — the prompt travels as its plain field dict, so the message is fully
    JSON round-trippable.
    """

    kind = "stolen_work"
    shard_id: int
    window_end_s: float
    entries: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))

    def _payload(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "window_end_s": self.window_end_s,
            "entries": [dict(entry) for entry in self.entries],
        }

    @classmethod
    def _from_payload(cls, payload: dict) -> "StolenWork":
        data = dict(payload)
        data["entries"] = tuple(dict(entry) for entry in data.get("entries", ()))
        return cls(**data)


@_register
@dataclass(frozen=True)
class WorkTransfer(Message):
    """Coordinator -> destination shard: dispatch these stolen entries.

    The destination injects each prompt at the barrier time with the entry's
    original offer time as its arrival, so the cross-shard wait stays charged
    to the request's own latency.  Entries share :class:`StolenWork`'s shape.
    """

    kind = "work_transfer"
    window_end_s: float
    entries: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))

    def _payload(self) -> dict:
        return {
            "window_end_s": self.window_end_s,
            "entries": [dict(entry) for entry in self.entries],
        }

    @classmethod
    def _from_payload(cls, payload: dict) -> "WorkTransfer":
        data = dict(payload)
        data["entries"] = tuple(dict(entry) for entry in data.get("entries", ()))
        return cls(**data)


# --------------------------------------------------------------------------- #
# Finalization payload
# --------------------------------------------------------------------------- #


def _encode_collector_state(state: dict) -> dict:
    """List-ify the numpy columns and string-ify int dict keys."""
    encoded = dict(state)
    for key in _STATE_DTYPES:
        encoded[key] = np.asarray(state[key]).tolist()
    encoded["minute_counts"] = {
        str(minute): list(counts) for minute, counts in state["minute_counts"].items()
    }
    encoded["arrivals_by_minute"] = {
        str(minute): int(count) for minute, count in state["arrivals_by_minute"].items()
    }
    return encoded


def _decode_collector_state(state: dict) -> dict:
    decoded = dict(state)
    for key, dtype in _STATE_DTYPES.items():
        decoded[key] = np.asarray(state[key], dtype=dtype)
    decoded["minute_counts"] = {
        int(minute): list(counts) for minute, counts in state["minute_counts"].items()
    }
    decoded["arrivals_by_minute"] = {
        int(minute): int(count) for minute, count in state["arrivals_by_minute"].items()
    }
    decoded["tenant_names"] = list(state["tenant_names"])
    return decoded


@_register
@dataclass(frozen=True)
class ShardResult(Message):
    """Shard -> coordinator: everything needed to merge the shard's run.

    ``collector_state`` is a
    :meth:`~repro.metrics.collector.MetricsCollector.export_state` snapshot;
    the scalar fields mirror the inputs of
    :func:`repro.metrics.report.summarize` so the coordinator can build the
    merged :class:`~repro.metrics.report.RunSummary` with the exact
    sequential summary math.
    """

    kind = "shard_result"
    shard_id: int
    system_name: str
    num_workers: int
    collector_state: dict
    requests_served: int
    batches_served: int
    model_loads: int
    utilization: float
    fleet_peak_workers: int
    fleet_mean_workers: float
    workers_added: int
    workers_retired: int
    gpu_hours: float
    cost_usd: float
    #: Requests still queued or in flight when the run (drain included) ended.
    outstanding_requests: int
    #: Per-minute rows: ``{"minute": int, "mean_workers": float, "by_gpu": {...}}``.
    fleet_minutes: list = field(default_factory=list)
    #: Shard-local observations (cache counters, switches, retraining, ...).
    extras: dict = field(default_factory=dict)
    #: Per-tenant observations keyed by tenant name (tenant-partitioned runs).
    tenant_extras: dict = field(default_factory=dict)
    #: Encoded data-plane messages, populated only in message-recording mode.
    messages: list = field(default_factory=list)

    def _payload(self) -> dict:
        payload = asdict(self)
        payload["collector_state"] = _encode_collector_state(self.collector_state)
        return payload

    @classmethod
    def _from_payload(cls, payload: dict) -> "ShardResult":
        data = dict(payload)
        data["collector_state"] = _decode_collector_state(data["collector_state"])
        return cls(**data)
