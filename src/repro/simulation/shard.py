"""Sharded parallel execution of scenario runs.

A sharded run partitions one scenario across N shard processes.  Each shard
owns a slice of the arrival stream and a partition of the fleet, runs its
own :class:`~repro.simulation.engine.SimulationEngine` event loop over its
slice, and synchronizes with the coordinator at a conservative time-window
barrier: no shard's clock advances past a window boundary until every shard
has reached it and exchanged its fleet/metrics deltas.  All communication
crosses the process boundary as the explicit message types in
:mod:`repro.simulation.messages` — there is no shared object graph.

Partitioning
    *Tenant mode* (two or more tenants): tenants are greedy-bin-packed onto
    shards by offered load, and each shard filters the full multi-tenant
    stream down to its tenant set.  Every tenant lives wholly on one shard,
    so per-tenant SLO accounting, admission fair-share and cache namespaces
    stay exact.

    *Hash mode* (single-tenant workloads): requests are partitioned by a
    stable hash of the prompt content, so a given prompt always lands on the
    same shard and its cache locality survives the split.

    In both modes each shard rebuilds the scenario's *full* request stream
    with the sequential seed derivations and filters it, so the union of the
    shard slices is exactly the sequential arrival sequence.

Merging
    Each shard ships a :class:`~repro.simulation.messages.ShardResult`
    carrying its collector's columnar snapshot.  The coordinator absorbs the
    snapshots (in shard order — deterministic) into one measurement-only
    :class:`~repro.metrics.collector.MetricsCollector` and calls the *same*
    ``summarize()`` / ``minute_series()`` paths as a sequential run, so the
    merged report uses identical summary math.

``shards=1`` never enters this module's process machinery: it routes back
to the plain sequential :func:`~repro.scenarios.runtime.run_scenario`,
which is what pins bit-identity between the two modes.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import asdict, dataclass

import numpy as np

from repro.metrics.collector import MetricsCollector
from repro.metrics.report import TenantSummary, summarize
from repro.simulation import messages
from repro.workloads.tenants import resolve_shares


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the run: its fleet share and its stream filter."""

    shard_id: int
    num_shards: int
    #: Workers in this shard's fleet partition (>= 1).
    num_workers: int
    #: Tenants this shard serves, or None for hash-of-prompt partitioning.
    tenant_names: tuple[str, ...] | None = None

    def accepts(self, prompt) -> bool:
        """Whether a prompt belongs to this shard's stream slice."""
        if self.tenant_names is not None:
            return prompt.tenant in self.tenant_names
        return prompt.content_hash() % self.num_shards == self.shard_id


@dataclass(frozen=True)
class ShardPlan:
    """The full partition: one :class:`ShardSpec` per shard process."""

    mode: str  # "tenant" or "hash"
    shards: tuple[ShardSpec, ...]


def _split_workers(total: int, weights: list[float]) -> list[int]:
    """Largest-remainder proportional split with a floor of 1 worker/shard."""
    n = len(weights)
    if total < n:
        raise ValueError(f"cannot split {total} workers across {n} shards")
    if sum(weights) <= 0:
        weights = [1.0] * n
    weight_sum = sum(weights)
    counts = [1] * n
    remaining = total - n
    raw = [remaining * w / weight_sum for w in weights]
    floors = [int(r) for r in raw]
    for i in range(n):
        counts[i] += floors[i]
    leftover = remaining - sum(floors)
    order = sorted(range(n), key=lambda i: (-(raw[i] - floors[i]), i))
    for i in order[:leftover]:
        counts[i] += 1
    return counts


def plan_shards(config, trace=None) -> ShardPlan:
    """Partition a config's workload and fleet into ``config.shards`` slices.

    Multi-tenant deployments partition by tenant (greedy bin-pack by offered
    load, heaviest first, onto the lightest shard); single-tenant workloads
    fall back to hashing the prompt content.  Workers are split across
    shards by largest-remainder proportional to each shard's load, with at
    least one worker per shard.  ``trace`` sharpens the tenant load estimate
    with each tenant's ``extra_qpm`` series; without it the bin-pack uses
    base-trace shares alone.
    """
    n = int(config.shards)
    if len(config.tenants) >= 2:
        if n > len(config.tenants):
            raise ValueError(
                f"shards={n} exceeds the {len(config.tenants)} tenants: tenant "
                "partitioning places whole tenants on shards, so a run cannot "
                "use more shards than it has tenants"
            )
        shares = resolve_shares(config.tenants)
        base_total = float(sum(trace.qpm)) if trace is not None else 1.0
        loads = {
            spec.name: shares[spec.name] * (base_total if trace is not None else 1.0)
            + (sum(spec.extra_qpm) if trace is not None else 0.0)
            for spec in config.tenants
        }
        bins: list[list[str]] = [[] for _ in range(n)]
        bin_loads = [0.0] * n
        heaviest_first = sorted(config.tenants, key=lambda t: (-loads[t.name], t.name))
        for spec in heaviest_first:
            target = min(range(n), key=lambda i: (bin_loads[i], i))
            bins[target].append(spec.name)
            bin_loads[target] += loads[spec.name]
        # Keep each shard's tenant list in the config's tenant order so the
        # shard config's tenant tuple is a stable subsequence of the full one.
        config_order = {spec.name: i for i, spec in enumerate(config.tenants)}
        worker_counts = _split_workers(config.num_workers, bin_loads)
        specs = tuple(
            ShardSpec(
                shard_id=i,
                num_shards=n,
                num_workers=worker_counts[i],
                tenant_names=tuple(sorted(bins[i], key=config_order.__getitem__)),
            )
            for i in range(n)
        )
        return ShardPlan(mode="tenant", shards=specs)
    worker_counts = _split_workers(config.num_workers, [1.0] * n)
    specs = tuple(
        ShardSpec(shard_id=i, num_shards=n, num_workers=worker_counts[i])
        for i in range(n)
    )
    return ShardPlan(mode="hash", shards=specs)


# --------------------------------------------------------------------------- #
# Shard process
# --------------------------------------------------------------------------- #


class _MessageRecorder:
    """Wraps a shard system's dispatch/completion/requeue paths so every
    request movement is captured as an encoded data-plane message.

    Workers hold *bound* references to the system's callbacks, so the
    recorder rebinds both the cluster-level hooks (for any future workers)
    and each existing worker's own reference.
    """

    def __init__(self, serving, shard_id: int) -> None:
        self.shard_id = shard_id
        self.records: list[dict] = []
        cluster = serving.cluster
        engine = serving.engine

        original_dispatch = cluster.dispatch
        original_complete = serving._handle_completion
        original_requeue = serving._handle_requeue

        def dispatch(request, worker_id: int) -> None:
            self.records.append(
                messages.DispatchMessage(
                    shard_id=shard_id,
                    request_id=request.request_id,
                    worker_id=worker_id,
                    time_s=engine.now,
                    tenant=request.prompt.tenant,
                    prompt_id=request.prompt.prompt_id,
                    predicted_rank=request.predicted_rank,
                    assigned_rank=request.assigned_rank,
                    strategy=str(request.strategy.value),
                ).encode()
            )
            original_dispatch(request, worker_id)

        def on_complete(completed) -> None:
            self.records.append(
                messages.CompletionMessage(
                    shard_id=shard_id,
                    request_id=completed.request.request_id,
                    worker_id=completed.worker_id,
                    completion_time_s=completed.completion_time_s,
                    latency_s=completed.latency_s,
                    effective_rank=completed.effective_rank,
                    cache_hit=completed.cache_hit,
                ).encode()
            )
            original_complete(completed)

        def on_requeue(request) -> None:
            self.records.append(
                messages.RequeueMessage(
                    shard_id=shard_id,
                    request_id=request.request_id,
                    time_s=engine.now,
                    tenant=request.prompt.tenant,
                ).encode()
            )
            original_requeue(request)

        cluster.dispatch = dispatch
        cluster._on_complete = on_complete
        cluster._on_requeue = on_requeue
        for worker in cluster.workers:
            worker.on_complete = on_complete
            worker.on_requeue = on_requeue


def _build_shard_system(payload: dict):
    """Build one shard's serving system and its filtered arrival stream."""
    # Imports are deferred so a spawn-context child only pays them once.
    from repro.experiments.runner import build_system
    from repro.scenarios.runtime import build_config, build_stream
    from repro.scenarios.spec import Scenario

    scenario = Scenario.from_dict(payload["scenario"])
    preset_spec = scenario.preset(payload["preset"])
    seed = int(payload["seed"])
    spec = ShardSpec(
        shard_id=int(payload["shard_id"]),
        num_shards=int(payload["num_shards"]),
        num_workers=int(payload["num_workers"]),
        tenant_names=(
            tuple(payload["tenant_names"]) if payload["tenant_names"] is not None else None
        ),
    )
    # The *full* config (and stream) use the scenario's own fleet/tenant
    # settings, so seeds and arrival interleaves match the sequential run;
    # the shard's own system gets the fleet slice and its tenant subset.
    full_config = build_config(scenario, preset_spec, seed)
    trace = scenario.trace.build(seed=seed, **preset_spec.trace_params)
    stream = build_stream(scenario, preset_spec, full_config, trace, seed)

    extra: dict = {"num_workers": spec.num_workers, "shards": 1}
    if spec.tenant_names is not None:
        extra["tenants"] = tuple(
            t for t in full_config.tenants if t.name in set(spec.tenant_names)
        )
    shard_config = build_config(scenario, preset_spec, seed, extra=extra)
    serving = build_system(payload["system"] or scenario.system, config=shard_config)
    # Network-condition timelines are global state replicated identically on
    # every shard; worker-fault schedules are rejected coordinator-side.
    from repro.cache.network import NetworkCondition

    _, _, network = scenario.schedule(preset_spec)
    for window in network:
        serving.network.schedule_condition(
            window.start_minute * 60.0,
            window.end_minute * 60.0,
            NetworkCondition(window.condition),
        )

    arrivals = payload.get("arrivals")
    if arrivals is not None:
        serving.schedule_arrivals(_replay_arrivals(stream, arrivals))
    else:
        serving.schedule_arrivals(_filtered_stream(stream, spec))
    return serving, spec, trace


def _replay_arrivals(stream, arrivals):
    """Yield a coordinator-partitioned arrival slice as timed prompts.

    ``arrivals`` is the ``(times, slots)`` pair produced by
    :func:`_partition_arrivals`; the floats are the exact sequential arrival
    times, so the yielded sequence is bit-identical to filtering the full
    stream shard-side — without this shard paying the full-stream walk.
    """
    from repro.workloads.replay import TimedPrompt

    times, slots = arrivals
    dataset = stream.dataset

    def iterate():
        for arrival, slot in zip(times.tolist(), slots.tolist()):
            yield TimedPrompt(arrival_time_s=arrival, prompt=dataset[slot])

    return iterate()


def _filtered_stream(stream, spec: ShardSpec):
    """This shard's slice of the arrival stream, cheapest path available.

    Hash partitioning on a plain cyclic stream has a fast path: the prompt
    served at arrival ``i`` is ``dataset[i % len(dataset)]``, so shard
    membership is a fixed boolean per dataset index.  Precomputing that
    table lets the generator skip the ``TimedPrompt`` construction and the
    hash for the (N-1)/N arrivals that belong to other shards — on a
    10M-request trace each shard walks the full arrival sequence, so this
    is a large slice of per-shard overhead.  Tenant partitions and phased
    (drift) streams fall back to filtering the generic stream; either way
    the yielded (time, prompt) sequence is exactly ``filter(accepts,
    stream)``.
    """
    from repro.workloads.arrival import ArrivalProcess
    from repro.workloads.replay import RequestStream, TimedPrompt

    if spec.tenant_names is not None or type(stream) is not RequestStream:
        return (tp for tp in stream if spec.accepts(tp.prompt))

    dataset = stream.dataset
    size = len(dataset)
    member = [spec.accepts(dataset[i]) for i in range(size)]

    def iterate():
        process = ArrivalProcess(seed=stream.seed)
        index = 0
        for arrival in process.iter_arrivals(stream.trace, stream.arrival_kind):
            slot = index % size
            if member[slot]:
                yield TimedPrompt(arrival_time_s=arrival, prompt=dataset[slot])
            index += 1

    return iterate()


def _partition_arrivals(stream, plan: ShardPlan):
    """Split the full arrival sequence into per-shard slices, one pass.

    On a plain cyclic stream the prompt at arrival ``i`` is
    ``dataset[i % len(dataset)]``, and shard membership (tenant or content
    hash) is a pure function of the dataset slot — so the coordinator can
    assign every arrival to its shard in a single vectorized pass.  Without
    this, each of the N shard processes walks all ~n arrivals to keep its
    1/N slice; on one core those N walks serialize into the dominant fixed
    overhead of a sharded run (~60% of the non-fleet per-request cost at
    N=8).  Returns a ``(times, slots)`` pair per shard, or None when the
    stream is phased (drift replays a different dataset per phase) or a
    slot matches no shard — those fall back to shard-side filtering.
    """
    from repro.workloads.arrival import ArrivalProcess
    from repro.workloads.replay import RequestStream

    if type(stream) is not RequestStream:
        return None
    dataset = stream.dataset
    size = len(dataset)
    shard_of_slot = np.empty(size, dtype=np.int64)
    for slot in range(size):
        prompt = dataset[slot]
        for spec in plan.shards:
            if spec.accepts(prompt):
                shard_of_slot[slot] = spec.shard_id
                break
        else:
            return None
    process = ArrivalProcess(seed=stream.seed)
    times = np.fromiter(
        process.iter_arrivals(stream.trace, stream.arrival_kind), dtype=np.float64
    )
    slots = np.arange(len(times), dtype=np.int64) % size
    owners = shard_of_slot[slots]
    return [
        (times[owners == spec.shard_id], slots[owners == spec.shard_id])
        for spec in plan.shards
    ]


def _shard_main(payload: dict, conn) -> None:
    """Shard process entry point: barrier loop over the connection."""
    serving, spec, trace = _build_shard_system(payload)
    recorder = (
        _MessageRecorder(serving, spec.shard_id) if payload.get("record_messages") else None
    )
    collector = serving.collector
    cluster = serving.cluster
    last = {"arrivals": 0, "completions": 0, "dropped": 0, "violations": 0, "loads": 0}
    started = False
    try:
        while True:
            message = messages.decode(conn.recv())
            if isinstance(message, messages.RunWindow):
                if not started:
                    serving.start()
                    serving._started = True
                    started = True
                serving.engine.run(until=message.window_end_s)
                now = {
                    "arrivals": collector.total_arrivals,
                    "completions": collector.total_completions,
                    "dropped": collector.dropped_requests,
                    "violations": collector.total_slo_violations,
                    "loads": cluster.total_model_loads(),
                }
                reply = messages.BarrierReached(
                    shard_id=spec.shard_id,
                    window_end_s=message.window_end_s,
                    metrics=messages.MetricsDelta(
                        shard_id=spec.shard_id,
                        window_end_s=message.window_end_s,
                        arrivals=now["arrivals"] - last["arrivals"],
                        completions=now["completions"] - last["completions"],
                        dropped=now["dropped"] - last["dropped"],
                        slo_violations=now["violations"] - last["violations"],
                    ),
                    fleet=messages.FleetDelta(
                        shard_id=spec.shard_id,
                        window_end_s=message.window_end_s,
                        active_workers=cluster.fleet_size,
                        workers_added=cluster.workers_added,
                        workers_retired=cluster.workers_retired,
                        model_loads=now["loads"] - last["loads"],
                    ),
                )
                last = now
                conn.send(reply.encode())
            elif isinstance(message, messages.Finalize):
                # Sent as the typed object: the pipe pickles numpy columns
                # directly instead of round-tripping them through lists.
                conn.send(_finalize(serving, spec, trace, recorder))
                return
            else:  # pragma: no cover - protocol misuse is a programming error
                raise RuntimeError(f"shard received unexpected message {message!r}")
    finally:
        conn.close()


def _finalize(serving, spec: ShardSpec, trace, recorder) -> messages.ShardResult:
    """Assemble the shard's closing :class:`~repro.simulation.messages.ShardResult`."""
    duration_s = trace.duration_minutes * 60.0
    cluster = serving.cluster
    fleet_peak, fleet_mean = cluster.fleet_stats(duration_s)
    extras: dict = {
        "arrivals": serving.collector.total_arrivals,
        "strategy_switches": (
            serving.num_strategy_switches()
            if hasattr(serving, "num_strategy_switches")
            else None
        ),
        "retraining_events": getattr(serving, "retraining_events", None),
    }
    if serving.cache is not None:
        # Mirror ApproximateCache.hit_rate: the default store plus every
        # tenant namespace (tenant-partitioned runs keep hits in the latter).
        hits = serving.cache.store.stats.hits
        misses = serving.cache.store.stats.misses
        for namespace in serving.cache._namespaces.values():
            hits += namespace.store.stats.hits
            misses += namespace.store.stats.misses
        extras["cache_store_hits"] = int(hits)
        extras["cache_store_misses"] = int(misses)
        extras["retrieval_hits"] = int(serving.cache.retrieval_hits)
        extras["retrieval_attempts"] = int(serving.cache.retrieval_attempts)
    tenant_extras: dict = {}
    if serving.config.tenants:
        for row in serving._tenant_breakdown():
            tenant_extras[row.name] = {"summary": asdict(row)}
        if serving.admission is not None:
            for name, stats in serving.admission.stats.items():
                tenant_extras.setdefault(name, {})["admission"] = {
                    "offered": stats.offered,
                    "delayed": stats.delayed,
                    "mean_wait_s": stats.mean_wait_s,
                    "max_wait_s": stats.max_wait_s,
                }
    return messages.ShardResult(
        shard_id=spec.shard_id,
        system_name=serving.name,
        num_workers=spec.num_workers,
        collector_state=serving.collector.export_state(),
        requests_served=cluster.total_requests_served(),
        batches_served=cluster.total_batches_served(),
        model_loads=cluster.total_model_loads(),
        utilization=cluster.utilization(duration_s),
        fleet_peak_workers=fleet_peak,
        fleet_mean_workers=fleet_mean,
        workers_added=cluster.workers_added,
        workers_retired=cluster.workers_retired,
        gpu_hours=cluster.gpu_hours(duration_s),
        cost_usd=cluster.total_cost_usd(duration_s),
        outstanding_requests=cluster.total_queue_length(),
        fleet_minutes=[
            {"minute": fm.minute, "mean_workers": fm.mean_workers, "by_gpu": dict(fm.by_gpu)}
            for fm in cluster.fleet_minute_series(trace.duration_minutes)
        ],
        extras=extras,
        tenant_extras=tenant_extras,
        messages=list(recorder.records) if recorder is not None else [],
    )


# --------------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------------- #


def _window_boundaries(total_s: float, window_s: float) -> list[float]:
    """Barrier times covering (0, total_s], ending exactly at ``total_s``."""
    boundaries = []
    t = window_s
    while t < total_s:
        boundaries.append(t)
        t += window_s
    boundaries.append(total_s)
    return boundaries


def _merge_fleet_minutes(results) -> tuple[list, dict]:
    """Sum per-shard fleet minute series into a fleet-wide series."""
    from repro.cluster.cluster import FleetMinute

    minutes: dict[int, dict] = {}
    for result in results:
        for row in result.fleet_minutes:
            entry = minutes.setdefault(row["minute"], {"mean_workers": 0.0, "by_gpu": {}})
            entry["mean_workers"] += row["mean_workers"]
            for gpu, value in row["by_gpu"].items():
                entry["by_gpu"][gpu] = entry["by_gpu"].get(gpu, 0.0) + value
    series = [
        FleetMinute(
            minute=minute,
            mean_workers=minutes[minute]["mean_workers"],
            by_gpu=dict(minutes[minute]["by_gpu"]),
        )
        for minute in sorted(minutes)
    ]
    return series, {fm.minute: fm for fm in series}


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def run_scenario_sharded(
    scenario,
    preset: str = "full",
    seed: int | None = None,
    system: str | None = None,
    shards: int | None = None,
    sync_window_s: float | None = None,
    record_messages: bool = False,
):
    """Run a scenario partitioned across shard processes.

    Returns the same :class:`~repro.scenarios.runtime.ScenarioRun` shape as
    the sequential runner (``run.system`` is None for N > 1 — there is no
    single live system object), with a ``"sharding"`` block in the extras.
    ``shards=1`` delegates straight to the sequential path and is
    bit-identical to it.  ``record_messages=True`` makes every shard record
    its data-plane messages into the sharding extras (debug/verification
    mode; materially enlarges the result).
    """
    from repro.experiments.runner import ExperimentResult
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runtime import ScenarioRun, build_config, build_stream, run_scenario

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    preset_name = preset
    preset_spec = scenario.preset(preset_name)
    if seed is None:
        seed = scenario.default_seed
    seed = int(seed)

    extra: dict = {}
    if shards is not None:
        extra["shards"] = int(shards)
    if sync_window_s is not None:
        extra["sync_window_s"] = float(sync_window_s)
    config = build_config(scenario, preset_spec, seed, extra=extra)
    if config.shards <= 1:
        return run_scenario(
            scenario, preset=preset_name, seed=seed, system=system, shards=1
        )

    faults, _, _ = scenario.schedule(preset_spec)
    if faults:
        raise ValueError(
            "sharded runs cannot schedule worker faults: fault events address "
            "worker ids in the global fleet, which a partitioned run does not "
            "have; run fault scenarios sequentially (shards=1)"
        )

    trace = scenario.trace.build(seed=seed, **preset_spec.trace_params)
    plan = plan_shards(config, trace=trace)
    scenario_dict = scenario.to_dict()
    arrival_split = _partition_arrivals(
        build_stream(scenario, preset_spec, config, trace, seed), plan
    )

    start_methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in start_methods else "spawn")
    processes = []
    conns = []
    try:
        for spec in plan.shards:
            parent_conn, child_conn = ctx.Pipe()
            payload = {
                "scenario": scenario_dict,
                "preset": preset_name,
                "seed": seed,
                "system": system,
                "shard_id": spec.shard_id,
                "num_shards": spec.num_shards,
                "num_workers": spec.num_workers,
                "tenant_names": (
                    list(spec.tenant_names) if spec.tenant_names is not None else None
                ),
                "record_messages": bool(record_messages),
                "arrivals": (
                    arrival_split[spec.shard_id] if arrival_split is not None else None
                ),
            }
            process = ctx.Process(
                target=_shard_main, args=(payload, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            processes.append(process)
            conns.append(parent_conn)

        duration_s = trace.duration_minutes * 60.0
        boundaries = _window_boundaries(
            duration_s + preset_spec.drain_s, config.sync_window_s
        )
        barrier_log: list[dict] = []
        for end in boundaries:
            window = messages.RunWindow(window_end_s=end).encode()
            for conn in conns:
                conn.send(window)
            # The recv below is the barrier: the window's merged deltas exist
            # only once every shard has reached the boundary.
            replies = [messages.decode(conn.recv()) for conn in conns]
            barrier_log.append(
                {
                    "window_end_s": end,
                    "completions": sum(r.metrics.completions for r in replies),
                    "arrivals": sum(r.metrics.arrivals for r in replies),
                    "active_workers": sum(r.fleet.active_workers for r in replies),
                }
            )
        finalize = messages.Finalize().encode()
        for conn in conns:
            conn.send(finalize)
        results = sorted(
            (messages.decode(conn.recv()) for conn in conns), key=lambda r: r.shard_id
        )
        for process in processes:
            process.join(timeout=60.0)
    finally:
        for conn in conns:
            conn.close()
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join()

    # ------------------------------------------------------------------ #
    # Deterministic merge (shard order)
    # ------------------------------------------------------------------ #
    merged = MetricsCollector(slo=config.slo, retain_completed=False)
    for result in results:
        merged.absorb_state(result.collector_state)

    duration_minutes = trace.duration_minutes
    # The same full stream the shards filtered knows the exact offered load
    # (including per-tenant extra_qpm series), matching the sequential view.
    full_stream = build_stream(scenario, preset_spec, config, trace, seed)
    offered = {
        minute: full_stream.offered_qpm(minute) for minute in range(duration_minutes)
    }
    fleet_minutes, fleet_by_minute = _merge_fleet_minutes(results)
    minute_series = merged.minute_series(offered=offered, fleet=fleet_by_minute)

    total_workers = sum(r.num_workers for r in results)
    total_batches = sum(r.batches_served for r in results)
    total_served = sum(r.requests_served for r in results)
    tenants: tuple[TenantSummary, ...] = ()
    if config.tenants:
        rows = {}
        for result in results:
            for name, entry in result.tenant_extras.items():
                if "summary" in entry:
                    rows[name] = TenantSummary(**entry["summary"])
        tenants = tuple(rows[spec.name] for spec in config.tenants if spec.name in rows)

    summary = summarize(
        system=results[0].system_name,
        workload=trace.name,
        collector=merged,
        duration_minutes=duration_minutes,
        cluster_utilization=sum(r.utilization * r.num_workers for r in results)
        / max(total_workers, 1),
        model_loads=sum(r.model_loads for r in results),
        mean_batch_occupancy=(total_served / total_batches) if total_batches else 1.0,
        fleet_peak_workers=sum(r.fleet_peak_workers for r in results),
        fleet_mean_workers=sum(r.fleet_mean_workers for r in results),
        workers_added=sum(r.workers_added for r in results),
        workers_retired=sum(r.workers_retired for r in results),
        gpu_hours=sum(r.gpu_hours for r in results),
        cost_usd=sum(r.cost_usd for r in results),
        tenants=tenants,
    )

    has_cache = any("cache_store_hits" in r.extras for r in results)
    store_hits = sum(r.extras.get("cache_store_hits", 0) for r in results)
    store_misses = sum(r.extras.get("cache_store_misses", 0) for r in results)
    retrieval_hits = sum(r.extras.get("retrieval_hits", 0) for r in results)
    retrieval_attempts = sum(r.extras.get("retrieval_attempts", 0) for r in results)
    cache_hit_rate = _ratio(store_hits, store_hits + store_misses) if has_cache else None
    experiment = ExperimentResult(
        system=results[0].system_name,
        workload=trace.name,
        summary=summary,
        minute_series=minute_series,
        extras={
            "cache_hit_rate": cache_hit_rate,
            "total_requests": merged.total_arrivals,
            "fleet_minutes": fleet_minutes,
        },
    )

    extras: dict = {
        "cache_hit_rate": cache_hit_rate,
        "total_requests": merged.total_arrivals,
    }
    if has_cache:
        extras["retrieval_hit_rate"] = _ratio(retrieval_hits, retrieval_attempts)
        extras["retrieval_attempts"] = retrieval_attempts
    switches = [r.extras.get("strategy_switches") for r in results]
    if any(s is not None for s in switches):
        extras["strategy_switches"] = sum(s or 0 for s in switches)
    retrains = [r.extras.get("retraining_events") for r in results]
    if any(s is not None for s in retrains):
        extras["retraining_events"] = sum(s or 0 for s in retrains)
    if config.tenants:
        extras["fair_share_index"] = summary.fair_share_index
        admission = {
            name: entry["admission"]
            for result in results
            for name, entry in result.tenant_extras.items()
            if "admission" in entry
        }
        if admission:
            extras["admission"] = admission
    extras["sharding"] = {
        "shards": config.shards,
        "mode": plan.mode,
        "sync_window_s": config.sync_window_s,
        "windows": len(boundaries),
        "plan": [
            {
                "shard": spec.shard_id,
                "workers": spec.num_workers,
                "tenants": list(spec.tenant_names) if spec.tenant_names else None,
            }
            for spec in plan.shards
        ],
        "per_shard": [
            {
                "shard": r.shard_id,
                "arrivals": r.extras.get("arrivals", 0),
                "requests_served": r.requests_served,
                "outstanding_requests": r.outstanding_requests,
                "gpu_hours": r.gpu_hours,
            }
            for r in results
        ],
        "barriers": barrier_log,
    }
    if record_messages:
        extras["sharding"]["messages"] = {r.shard_id: list(r.messages) for r in results}

    return ScenarioRun(
        scenario=scenario,
        preset_name=preset_name,
        seed=seed,
        trace=trace,
        config=config,
        system=None,
        result=experiment,
        extras=extras,
    )
