"""Sharded parallel execution of scenario runs.

A sharded run partitions one scenario across N shard processes.  Each shard
owns a slice of the arrival stream and a partition of the fleet, runs its
own :class:`~repro.simulation.engine.SimulationEngine` event loop over its
slice, and synchronizes with the coordinator at a conservative time-window
barrier: no shard's clock advances past a window boundary until every shard
has reached it and exchanged its fleet/metrics deltas.  All communication
crosses the process boundary as the explicit message types in
:mod:`repro.simulation.messages` — there is no shared object graph.

Partitioning
    *Tenant mode* (two or more tenants): tenants are greedy-bin-packed onto
    shards by offered load, and each shard filters the full multi-tenant
    stream down to its tenant set.  Every tenant lives wholly on one shard,
    so per-tenant SLO accounting, admission fair-share and cache namespaces
    stay exact.

    *Hash mode* (single-tenant workloads): requests are partitioned by a
    stable hash of the prompt content, so a given prompt always lands on the
    same shard and its cache locality survives the split.

    In both modes each shard rebuilds the scenario's *full* request stream
    with the sequential seed derivations and filters it, so the union of the
    shard slices is exactly the sequential arrival sequence.

Control plane
    Autoscaled sharded runs put a budget broker on the coordinator: each
    shard runs its own :class:`~repro.core.autoscaler.Autoscaler` over its
    fleet partition in *brokered* mode, shipping scale requests inside its
    barrier reply; the broker grants them in (shard id, request seq) order
    against the global ``min_workers``/``max_workers``/``gpu_mix`` budget
    and answers every shard with a grant message before the next window.
    The exchange happens only on the fixed ``autoscale_epoch_s`` grid (the
    barrier boundaries are the union of the sync-window and epoch grids),
    which is what keeps autoscaled runs invariant under ``sync_window_s``.

    With ``shard_work_stealing`` on (tenant mode only), shards also report
    admission/worker backlog at each barrier and the coordinator migrates
    admission-queue tails — never in-flight batches — from the most
    backlogged shard to idle shards as serializable messages.  Stealing is
    off by default and a pinned no-op when disabled (zero extra messages).

Merging
    Each shard ships a :class:`~repro.simulation.messages.ShardResult`
    carrying its collector's columnar snapshot.  The coordinator absorbs the
    snapshots (in shard order — deterministic) into one measurement-only
    :class:`~repro.metrics.collector.MetricsCollector` and calls the *same*
    ``summarize()`` / ``minute_series()`` paths as a sequential run, so the
    merged report uses identical summary math.

``shards=1`` never enters this module's process machinery: it routes back
to the plain sequential :func:`~repro.scenarios.runtime.run_scenario`,
which is what pins bit-identity between the two modes.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.metrics.collector import MetricsCollector
from repro.metrics.report import TenantSummary, summarize
from repro.simulation import messages
from repro.workloads.tenants import build_runtimes, resolve_shares


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the run: its fleet share and its stream filter."""

    shard_id: int
    num_shards: int
    #: Workers in this shard's fleet partition (>= 1).
    num_workers: int
    #: Tenants this shard serves, or None for hash-of-prompt partitioning.
    tenant_names: tuple[str, ...] | None = None

    def accepts(self, prompt) -> bool:
        """Whether a prompt belongs to this shard's stream slice."""
        if self.tenant_names is not None:
            return prompt.tenant in self.tenant_names
        return prompt.content_hash() % self.num_shards == self.shard_id


@dataclass(frozen=True)
class ShardPlan:
    """The full partition: one :class:`ShardSpec` per shard process."""

    mode: str  # "tenant" or "hash"
    shards: tuple[ShardSpec, ...]


def _split_workers(total: int, weights: list[float]) -> list[int]:
    """Largest-remainder proportional split with a floor of 1 worker/shard."""
    n = len(weights)
    if total < n:
        raise ValueError(f"cannot split {total} workers across {n} shards")
    if sum(weights) <= 0:
        weights = [1.0] * n
    weight_sum = sum(weights)
    counts = [1] * n
    remaining = total - n
    raw = [remaining * w / weight_sum for w in weights]
    floors = [int(r) for r in raw]
    for i in range(n):
        counts[i] += floors[i]
    leftover = remaining - sum(floors)
    order = sorted(range(n), key=lambda i: (-(raw[i] - floors[i]), i))
    for i in order[:leftover]:
        counts[i] += 1
    return counts


def plan_shards(config, trace=None) -> ShardPlan:
    """Partition a config's workload and fleet into ``config.shards`` slices.

    Multi-tenant deployments partition by tenant (greedy bin-pack by offered
    load, heaviest first, onto the lightest shard); single-tenant workloads
    fall back to hashing the prompt content.  Workers are split across
    shards by largest-remainder proportional to each shard's load, with at
    least one worker per shard.  ``trace`` sharpens the tenant load estimate
    with each tenant's ``extra_qpm`` series; without it the bin-pack uses
    base-trace shares alone.
    """
    n = int(config.shards)
    if len(config.tenants) >= 2:
        if n > len(config.tenants):
            raise ValueError(
                f"shards={n} exceeds the {len(config.tenants)} tenants: tenant "
                "partitioning places whole tenants on shards, so a run cannot "
                "use more shards than it has tenants"
            )
        shares = resolve_shares(config.tenants)
        base_total = float(sum(trace.qpm)) if trace is not None else 1.0
        loads = {
            spec.name: shares[spec.name] * (base_total if trace is not None else 1.0)
            + (sum(spec.extra_qpm) if trace is not None else 0.0)
            for spec in config.tenants
        }
        bins: list[list[str]] = [[] for _ in range(n)]
        bin_loads = [0.0] * n
        heaviest_first = sorted(config.tenants, key=lambda t: (-loads[t.name], t.name))
        for spec in heaviest_first:
            target = min(range(n), key=lambda i: (bin_loads[i], i))
            bins[target].append(spec.name)
            bin_loads[target] += loads[spec.name]
        # Keep each shard's tenant list in the config's tenant order so the
        # shard config's tenant tuple is a stable subsequence of the full one.
        config_order = {spec.name: i for i, spec in enumerate(config.tenants)}
        worker_counts = _split_workers(config.num_workers, bin_loads)
        specs = tuple(
            ShardSpec(
                shard_id=i,
                num_shards=n,
                num_workers=worker_counts[i],
                tenant_names=tuple(sorted(bins[i], key=config_order.__getitem__)),
            )
            for i in range(n)
        )
        return ShardPlan(mode="tenant", shards=specs)
    worker_counts = _split_workers(config.num_workers, [1.0] * n)
    specs = tuple(
        ShardSpec(shard_id=i, num_shards=n, num_workers=worker_counts[i])
        for i in range(n)
    )
    return ShardPlan(mode="hash", shards=specs)


# --------------------------------------------------------------------------- #
# Shard process
# --------------------------------------------------------------------------- #


class _MessageRecorder:
    """Wraps a shard system's dispatch/completion/requeue paths so every
    request movement is captured as an encoded data-plane message.

    Workers hold *bound* references to the system's callbacks, so the
    recorder rebinds both the cluster-level hooks (for any future workers)
    and each existing worker's own reference.
    """

    def __init__(self, serving, shard_id: int) -> None:
        self.shard_id = shard_id
        self.records: list[dict] = []
        cluster = serving.cluster
        engine = serving.engine

        original_dispatch = cluster.dispatch
        original_complete = serving._handle_completion
        original_requeue = serving._handle_requeue

        def dispatch(request, worker_id: int) -> None:
            self.records.append(
                messages.DispatchMessage(
                    shard_id=shard_id,
                    request_id=request.request_id,
                    worker_id=worker_id,
                    time_s=engine.now,
                    tenant=request.prompt.tenant,
                    prompt_id=request.prompt.prompt_id,
                    predicted_rank=request.predicted_rank,
                    assigned_rank=request.assigned_rank,
                    strategy=str(request.strategy.value),
                ).encode()
            )
            original_dispatch(request, worker_id)

        def on_complete(completed) -> None:
            self.records.append(
                messages.CompletionMessage(
                    shard_id=shard_id,
                    request_id=completed.request.request_id,
                    worker_id=completed.worker_id,
                    completion_time_s=completed.completion_time_s,
                    latency_s=completed.latency_s,
                    effective_rank=completed.effective_rank,
                    cache_hit=completed.cache_hit,
                ).encode()
            )
            original_complete(completed)

        def on_requeue(request) -> None:
            self.records.append(
                messages.RequeueMessage(
                    shard_id=shard_id,
                    request_id=request.request_id,
                    time_s=engine.now,
                    tenant=request.prompt.tenant,
                ).encode()
            )
            original_requeue(request)

        cluster.dispatch = dispatch
        cluster._on_complete = on_complete
        cluster._on_requeue = on_requeue
        for worker in cluster.workers:
            worker.on_complete = on_complete
            worker.on_requeue = on_requeue


def _build_shard_system(payload: dict):
    """Build one shard's serving system and its filtered arrival stream."""
    # Imports are deferred so a spawn-context child only pays them once.
    from repro.experiments.runner import build_system
    from repro.scenarios.runtime import build_config, build_stream
    from repro.scenarios.spec import Scenario

    scenario = Scenario.from_dict(payload["scenario"])
    preset_spec = scenario.preset(payload["preset"])
    seed = int(payload["seed"])
    spec = ShardSpec(
        shard_id=int(payload["shard_id"]),
        num_shards=int(payload["num_shards"]),
        num_workers=int(payload["num_workers"]),
        tenant_names=(
            tuple(payload["tenant_names"]) if payload["tenant_names"] is not None else None
        ),
    )
    # The *full* config (and stream) use the scenario's own fleet/tenant
    # settings, so seeds and arrival interleaves match the sequential run;
    # the shard's own system gets the fleet slice and its tenant subset.
    full_config = build_config(scenario, preset_spec, seed)
    trace = scenario.trace.build(seed=seed, **preset_spec.trace_params)
    stream = build_stream(scenario, preset_spec, full_config, trace, seed)

    extra: dict = {"num_workers": spec.num_workers, "shards": 1}
    if spec.tenant_names is not None and not payload.get("stealing"):
        extra["tenants"] = tuple(
            t for t in full_config.tenants if t.name in set(spec.tenant_names)
        )
    # With work stealing on, every shard keeps the *full* tenant table (its
    # arrival slice still only carries its own tenants): migrated requests
    # from any tenant then land on known scheduler/cache/admission state,
    # and fair-share admission stays enabled even on single-tenant shards —
    # the admission queue is the steal source.
    if full_config.autoscale_enabled:
        # The shard autoscaler sizes asks over its partition with the full
        # global headroom; the coordinator's budget broker is what enforces
        # the global min/max, so the local bounds must not pre-clamp them.
        extra["min_workers"] = 1
        extra["max_workers"] = full_config.effective_max_workers
    shard_config = build_config(scenario, preset_spec, seed, extra=extra)
    serving = build_system(payload["system"] or scenario.system, config=shard_config)
    autoscaler = getattr(serving, "autoscaler", None)
    if autoscaler is not None:
        autoscaler.brokered = True
    # Network-condition timelines are global state replicated identically on
    # every shard.  Fault schedules arrive pre-mapped to shard-local worker
    # ids (the coordinator splits each fleet-fraction event across the
    # partitions); worker-id faults are rejected coordinator-side.
    from repro.cache.network import NetworkCondition

    _, _, network = scenario.schedule(preset_spec)
    for window in network:
        if window.node is not None:
            # Per-cache-node window: each shard replicates the tier's node
            # timeline (every shard owns a full tier over its own slice).
            serving.cache.schedule_node_condition(
                window.node,
                window.start_minute * 60.0,
                window.end_minute * 60.0,
                NetworkCondition(window.condition),
            )
            continue
        serving.network.schedule_condition(
            window.start_minute * 60.0,
            window.end_minute * 60.0,
            NetworkCondition(window.condition),
        )
    for event in scenario.cache_schedule(preset_spec):
        at_s = event.at_minute * 60.0
        cache = serving.cache
        if event.action == "add_node":
            serving.engine.schedule_at(
                at_s, lambda _e, c=cache: c.add_node(now_s=_e.now), name="cache-add-node"
            )
        elif event.action == "remove_node":
            serving.engine.schedule_at(
                at_s,
                lambda _e, c=cache, node=event.node: c.remove_node(node, now_s=_e.now),
                name=f"cache-remove-node-{event.node}",
            )
        else:
            serving.engine.schedule_at(
                at_s,
                lambda _e, c=cache, f=event.fraction, s=event.seed: c.poison(f, seed=s),
                name="cache-poison",
            )
    for local_id, fail_at_s, recover_at_s, degrade_factor in payload.get("faults") or ():
        if degrade_factor is not None:
            serving.cluster.schedule_degradation(
                int(local_id),
                float(degrade_factor),
                degrade_at_s=float(fail_at_s),
                restore_at_s=None if recover_at_s is None else float(recover_at_s),
            )
        else:
            serving.cluster.schedule_failure(
                int(local_id),
                fail_at_s=float(fail_at_s),
                recover_at_s=None if recover_at_s is None else float(recover_at_s),
            )

    arrivals = payload.get("arrivals")
    if arrivals is None:
        serving.schedule_arrivals(_filtered_stream(stream, spec))
    elif arrivals["kind"] == "replay":
        serving.schedule_arrivals(
            _replay_arrivals(stream, (arrivals["times"], arrivals["slots"]))
        )
    else:
        serving.schedule_arrivals(_tenant_sliced_stream(stream, arrivals["indices"]))
    return serving, spec, trace


def _replay_arrivals(stream, arrivals):
    """Yield a coordinator-partitioned arrival slice as timed prompts.

    ``arrivals`` is the ``(times, slots)`` pair produced by
    :func:`_partition_arrivals`; the floats are the exact sequential arrival
    times, so the yielded sequence is bit-identical to filtering the full
    stream shard-side — without this shard paying the full-stream walk.
    """
    from repro.workloads.replay import TimedPrompt

    times, slots = arrivals
    dataset = stream.dataset

    def iterate():
        for arrival, slot in zip(times.tolist(), slots.tolist()):
            yield TimedPrompt(arrival_time_s=arrival, prompt=dataset[slot])

    return iterate()


def _tenant_sliced_stream(stream, indices):
    """Heap-merge only this shard's tenants' per-tenant arrival streams.

    The full multi-tenant stream is a ``heapq.merge`` of every tenant's
    ``(arrival, tenant_index, sequence)``-keyed lazy stream; merging just
    this shard's subset yields the identical sorted subsequence (per-tenant
    seeds and cursors are untouched), so the slice is bit-identical to
    filtering the full interleave — without paying the O(full-stream) walk
    per shard that made tenant mode the slowest partitioning path.
    """
    import heapq

    from repro.workloads.replay import TimedPrompt

    def iterate():
        streams = [stream._iter_tenant(index) for index in indices]
        for arrival, _index, _sequence, prompt in heapq.merge(*streams):
            yield TimedPrompt(arrival_time_s=arrival, prompt=prompt)

    return iterate()


def _filtered_stream(stream, spec: ShardSpec):
    """This shard's slice of the arrival stream, cheapest path available.

    Hash partitioning on a plain cyclic stream has a fast path: the prompt
    served at arrival ``i`` is ``dataset[i % len(dataset)]``, so shard
    membership is a fixed boolean per dataset index.  Precomputing that
    table lets the generator skip the ``TimedPrompt`` construction and the
    hash for the (N-1)/N arrivals that belong to other shards — on a
    10M-request trace each shard walks the full arrival sequence, so this
    is a large slice of per-shard overhead.  Tenant partitions and phased
    (drift) streams fall back to filtering the generic stream; either way
    the yielded (time, prompt) sequence is exactly ``filter(accepts,
    stream)``.
    """
    from repro.workloads.arrival import ArrivalProcess
    from repro.workloads.replay import RequestStream, TimedPrompt

    if spec.tenant_names is not None or type(stream) is not RequestStream:
        return (tp for tp in stream if spec.accepts(tp.prompt))

    dataset = stream.dataset
    size = len(dataset)
    member = [spec.accepts(dataset[i]) for i in range(size)]

    def iterate():
        process = ArrivalProcess(seed=stream.seed)
        index = 0
        for arrival in process.iter_arrivals(stream.trace, stream.arrival_kind):
            slot = index % size
            if member[slot]:
                yield TimedPrompt(arrival_time_s=arrival, prompt=dataset[slot])
            index += 1

    return iterate()


def _partition_arrivals(stream, plan: ShardPlan):
    """Split the full arrival sequence into per-shard slices, one pass.

    Returns one descriptor per shard, or None when no coordinator-side
    split applies (phased/drift streams, or a slot matching no shard) —
    those fall back to shard-side filtering of the full stream.

    ``{"kind": "replay", "times": ..., "slots": ...}``
        Plain cyclic streams: the prompt at arrival ``i`` is
        ``dataset[i % len(dataset)]`` and shard membership is a pure
        function of the dataset slot, so the coordinator assigns every
        arrival in a single vectorized pass.  Without this, each of the N
        shard processes walks all ~n arrivals to keep its 1/N slice; on one
        core those N walks serialize into the dominant fixed overhead of a
        sharded run (~60% of the non-fleet per-request cost at N=8).

    ``{"kind": "tenant_indices", "indices": [...]}``
        Tenant mode: arrival times are lazy per-tenant Poisson draws, so
        there is no precomputed sequence to slice — instead each shard
        heap-merges only its own tenants' streams
        (:func:`_tenant_sliced_stream`), which removes the same
        O(shards × full-stream) redundancy on the tenant path.
    """
    from repro.workloads.arrival import ArrivalProcess
    from repro.workloads.replay import RequestStream
    from repro.workloads.tenants import MultiTenantRequestStream

    if isinstance(stream, MultiTenantRequestStream):
        if plan.mode != "tenant":
            return None
        index_of = {spec.name: i for i, spec in enumerate(stream.tenants)}
        return [
            {
                "kind": "tenant_indices",
                "indices": [index_of[name] for name in shard.tenant_names],
            }
            for shard in plan.shards
        ]
    if type(stream) is not RequestStream:
        return None
    dataset = stream.dataset
    size = len(dataset)
    shard_of_slot = np.empty(size, dtype=np.int64)
    for slot in range(size):
        prompt = dataset[slot]
        for spec in plan.shards:
            if spec.accepts(prompt):
                shard_of_slot[slot] = spec.shard_id
                break
        else:
            return None
    process = ArrivalProcess(seed=stream.seed)
    times = np.fromiter(
        process.iter_arrivals(stream.trace, stream.arrival_kind), dtype=np.float64
    )
    slots = np.arange(len(times), dtype=np.int64) % size
    owners = shard_of_slot[slots]
    return [
        {
            "kind": "replay",
            "times": times[owners == spec.shard_id],
            "slots": slots[owners == spec.shard_id],
        }
        for spec in plan.shards
    ]


def _shard_main(payload: dict, conn) -> None:
    """Shard process entry point: barrier loop over the connection.

    Beyond the PR-6 window/finalize protocol the loop answers three control
    messages between windows: :class:`~repro.simulation.messages.
    ScaleOutcomes` applies budget-broker grants at exactly the epoch time
    (the clock sits at the window end), :class:`~repro.simulation.messages.
    StealRequest` hands back admission-queue tails as ``StolenWork``, and
    :class:`~repro.simulation.messages.WorkTransfer` injects stolen entries
    with their original offer time as the arrival — the cross-shard wait
    stays charged to the request's own latency.
    """
    from repro.prompts.generator import Prompt

    serving, spec, trace = _build_shard_system(payload)
    recorder = (
        _MessageRecorder(serving, spec.shard_id) if payload.get("record_messages") else None
    )
    collector = serving.collector
    cluster = serving.cluster
    autoscaler = getattr(serving, "autoscaler", None)
    last = {"arrivals": 0, "completions": 0, "dropped": 0, "violations": 0, "loads": 0}
    started = False
    try:
        while True:
            message = messages.decode(conn.recv())
            if isinstance(message, messages.RunWindow):
                if not started:
                    serving.start()
                    serving._started = True
                    started = True
                serving.engine.run(until=message.window_end_s)
                now = {
                    "arrivals": collector.total_arrivals,
                    "completions": collector.total_completions,
                    "dropped": collector.dropped_requests,
                    "violations": collector.total_slo_violations,
                    "loads": cluster.total_model_loads(),
                }
                scale_requests = ()
                unapplied_scale_ins = 0
                if autoscaler is not None:
                    if message.epoch_boundary:
                        scale_requests = autoscaler.take_requests()
                    # Shipped every barrier (not just epochs) so the broker
                    # ledger reconciles at the first opportunity after a
                    # skipped drain.
                    unapplied_scale_ins = autoscaler.take_unapplied_scale_ins()
                reply = messages.BarrierReached(
                    shard_id=spec.shard_id,
                    window_end_s=message.window_end_s,
                    metrics=messages.MetricsDelta(
                        shard_id=spec.shard_id,
                        window_end_s=message.window_end_s,
                        arrivals=now["arrivals"] - last["arrivals"],
                        completions=now["completions"] - last["completions"],
                        dropped=now["dropped"] - last["dropped"],
                        slo_violations=now["violations"] - last["violations"],
                    ),
                    fleet=messages.FleetDelta(
                        shard_id=spec.shard_id,
                        window_end_s=message.window_end_s,
                        active_workers=cluster.fleet_size,
                        workers_added=cluster.workers_added,
                        workers_retired=cluster.workers_retired,
                        model_loads=now["loads"] - last["loads"],
                        provisioning_workers=len(cluster.provisioning_workers),
                        failed_workers=sum(1 for w in cluster.workers if w.is_failed),
                    ),
                    scale_requests=scale_requests,
                    admission_backlog=(
                        serving.admission.backlog() if serving.admission is not None else 0
                    ),
                    worker_backlog=cluster.total_queued_requests(),
                    unapplied_scale_ins=unapplied_scale_ins,
                )
                last = now
                conn.send(reply.encode())
            elif isinstance(message, messages.ScaleOutcomes):
                if autoscaler is not None:
                    autoscaler.apply_outcomes(message.window_end_s, message.outcomes)
            elif isinstance(message, messages.StealRequest):
                entries = []
                if serving.admission is not None:
                    for tenant, offered_at, prompt in serving.admission.steal_tail(
                        message.count
                    ):
                        entries.append(
                            {
                                "tenant": tenant,
                                "offer_time_s": offered_at,
                                "prompt": asdict(prompt),
                            }
                        )
                conn.send(
                    messages.StolenWork(
                        shard_id=spec.shard_id,
                        window_end_s=message.window_end_s,
                        entries=tuple(entries),
                    ).encode()
                )
            elif isinstance(message, messages.WorkTransfer):
                # The migration *is* the admission decision: stolen work
                # bypasses this shard's fair-share front door (its arrival
                # was already recorded and admission-counted at the source).
                for entry in message.entries:
                    serving._dispatch_prompt(
                        Prompt(**entry["prompt"]),
                        arrival_time_s=float(entry["offer_time_s"]),
                    )
            elif isinstance(message, messages.Finalize):
                # Sent as the typed object: the pipe pickles numpy columns
                # directly instead of round-tripping them through lists.
                conn.send(_finalize(serving, spec, trace, recorder))
                return
            else:  # pragma: no cover - protocol misuse is a programming error
                raise RuntimeError(f"shard received unexpected message {message!r}")
    finally:
        conn.close()


def _finalize(serving, spec: ShardSpec, trace, recorder) -> messages.ShardResult:
    """Assemble the shard's closing :class:`~repro.simulation.messages.ShardResult`."""
    duration_s = trace.duration_minutes * 60.0
    cluster = serving.cluster
    fleet_peak, fleet_mean = cluster.fleet_stats(duration_s)
    admission = getattr(serving, "admission", None)
    extras: dict = {
        "arrivals": serving.collector.total_arrivals,
        "strategy_switches": (
            serving.num_strategy_switches()
            if hasattr(serving, "num_strategy_switches")
            else None
        ),
        "retraining_events": getattr(serving, "retraining_events", None),
        # Conservation inputs for the contract layer: every worker's
        # outstanding work (draining/failed included — total_queue_length()
        # counts only healthy workers) plus the shard's admission backlog.
        "outstanding_workers": sum(w.outstanding for w in cluster.workers),
        "admission_backlog": admission.backlog() if admission is not None else 0,
    }
    autoscaler = getattr(serving, "autoscaler", None)
    if autoscaler is not None:
        extras["autoscale_events"] = [asdict(event) for event in autoscaler.events]
        extras["scale_denials"] = int(autoscaler.denied_requests)
    if serving.cache is not None:
        # store_counts() folds every namespace (flat cache) or every cache
        # node (distributed tier) into one hit/miss pair.
        hits, misses = serving.cache.store_counts()
        extras["cache_store_hits"] = int(hits)
        extras["cache_store_misses"] = int(misses)
        extras["retrieval_hits"] = int(serving.cache.retrieval_hits)
        extras["retrieval_attempts"] = int(serving.cache.retrieval_attempts)
    tenant_extras: dict = {}
    if serving.config.tenants:
        for row in serving._tenant_breakdown():
            tenant_extras[row.name] = {"summary": asdict(row)}
        if serving.admission is not None:
            for name, stats in serving.admission.stats.items():
                tenant_extras.setdefault(name, {})["admission"] = {
                    "offered": stats.offered,
                    "delayed": stats.delayed,
                    "mean_wait_s": stats.mean_wait_s,
                    "max_wait_s": stats.max_wait_s,
                    "stolen": stats.stolen,
                }
        if serving.cache is not None:
            # Per-shard quota accounting: each shard's cache enforces the
            # tenant quota independently, so the merged cache-quota contract
            # checks every shard's entry count against the quota.
            for tenant_spec in serving.config.tenants:
                tenant_extras.setdefault(tenant_spec.name, {})["cache"] = {
                    "entries": serving.cache.tenant_entries(tenant_spec.name),
                    "quota": tenant_spec.cache_quota,
                }
    return messages.ShardResult(
        shard_id=spec.shard_id,
        system_name=serving.name,
        num_workers=spec.num_workers,
        collector_state=serving.collector.export_state(),
        requests_served=cluster.total_requests_served(),
        batches_served=cluster.total_batches_served(),
        model_loads=cluster.total_model_loads(),
        utilization=cluster.utilization(duration_s),
        fleet_peak_workers=fleet_peak,
        fleet_mean_workers=fleet_mean,
        workers_added=cluster.workers_added,
        workers_retired=cluster.workers_retired,
        gpu_hours=cluster.gpu_hours(duration_s),
        cost_usd=cluster.total_cost_usd(duration_s),
        outstanding_requests=cluster.total_queue_length(),
        fleet_minutes=[
            {"minute": fm.minute, "mean_workers": fm.mean_workers, "by_gpu": dict(fm.by_gpu)}
            for fm in cluster.fleet_minute_series(trace.duration_minutes)
        ],
        extras=extras,
        tenant_extras=tenant_extras,
        messages=list(recorder.records) if recorder is not None else [],
    )


# --------------------------------------------------------------------------- #
# Coordinator
# --------------------------------------------------------------------------- #


def _window_boundaries(
    total_s: float, window_s: float, epoch_s: float | None = None
) -> list[tuple[float, bool]]:
    """Barrier times covering (0, total_s], ending exactly at ``total_s``.

    Returns ``(time, epoch_boundary)`` pairs.  Without ``epoch_s`` every
    flag is False.  With it (autoscaled runs) the boundaries are the sorted
    union of the sync-window grid and the fixed ``autoscale_epoch_s`` grid,
    and the flag marks the epoch grid points: the scale request/grant
    exchange happens *only* there, so the autoscaling control flow — and
    with it the whole run — is invariant under the choice of
    ``sync_window_s``.  Grid points are exact multiples (not accumulated
    sums), so coinciding window/epoch boundaries dedupe exactly.
    """
    tol = 1e-6
    points: list[float] = []
    k = 1
    while k * window_s < total_s - tol:
        points.append(k * window_s)
        k += 1
    if epoch_s is not None:
        k = 1
        while k * epoch_s < total_s - tol:
            points.append(k * epoch_s)
            k += 1
    points.append(total_s)
    points.sort()
    boundaries: list[tuple[float, bool]] = []
    for t in points:
        if boundaries and abs(t - boundaries[-1][0]) <= tol:
            continue
        on_epoch = epoch_s is not None and abs(t - round(t / epoch_s) * epoch_s) <= tol
        boundaries.append((t, on_epoch))
    return boundaries


class _BudgetBroker:
    """Coordinator-side grant authority for brokered per-shard autoscaling.

    Keeps a committed-workers ledger per shard (seeded with the plan's
    initial partitions) and answers the shards' :class:`~repro.simulation.
    messages.ScaleRequest`s against the *global* budget: scale-outs are
    clamped to the ``max_workers`` headroom and draw GPU types from the
    global ``gpu_mix`` cycle (so the fleet mix matches a sequential
    deployment); scale-ins are granted only while the global fleet stays at
    or above ``min_workers`` and the shard keeps at least one worker.
    Requests are processed in (shard id, seq) order — a pure function of
    the simulated runs, never of process timing — which is what makes
    autoscaled N-shard runs reproducible.
    """

    def __init__(self, config, plan: ShardPlan) -> None:
        self.min_workers = int(config.effective_min_workers)
        self.max_workers = int(config.effective_max_workers)
        self._mix = tuple(config.effective_gpu_mix)
        self._mix_index = 0
        self.committed: dict[int, int] = {
            spec.shard_id: spec.num_workers for spec in plan.shards
        }
        self.grant_log: list[dict] = []

    @property
    def total_committed(self) -> int:
        return sum(self.committed.values())

    def _next_gpu(self) -> str:
        gpu = self._mix[self._mix_index % len(self._mix)]
        self._mix_index += 1
        return gpu

    def grant(self, window_end_s: float, replies) -> dict[int, messages.ScaleOutcomes]:
        """Decide every shard's asks for one epoch boundary.

        Returns a :class:`~repro.simulation.messages.ScaleOutcomes` per
        shard — for *all* shards, empty or not, so the reply fan-out stays
        lockstep with the barrier.
        """
        outcomes: dict[int, list] = {reply.shard_id: [] for reply in replies}
        asks = [
            (reply.shard_id, request)
            for reply in replies
            for request in reply.scale_requests
        ]
        asks.sort(key=lambda item: (item[0], item[1].seq))
        for shard_id, request in asks:
            if request.action == "scale_out":
                headroom = self.max_workers - self.total_committed
                granted = max(0, min(int(request.count), headroom))
                gpus = tuple(self._next_gpu() for _ in range(granted))
                self.committed[shard_id] += granted
                outcome = messages.ScaleOutcome(
                    seq=request.seq, action="scale_out", granted=granted, gpus=gpus
                )
            else:
                allowed = (
                    self.total_committed - 1 >= self.min_workers
                    and self.committed[shard_id] > 1
                )
                granted = 1 if allowed else 0
                self.committed[shard_id] -= granted
                outcome = messages.ScaleOutcome(
                    seq=request.seq, action="scale_in", granted=granted
                )
            outcomes[shard_id].append(outcome)
            self.grant_log.append(
                {
                    "window_end_s": window_end_s,
                    "shard": shard_id,
                    "seq": request.seq,
                    "action": request.action,
                    "requested": int(request.count),
                    "granted": granted,
                    "committed_total": self.total_committed,
                }
            )
        return {
            shard_id: messages.ScaleOutcomes(
                window_end_s=window_end_s, outcomes=tuple(decided)
            )
            for shard_id, decided in outcomes.items()
        }


def _map_faults(faults, plan: ShardPlan, num_workers: int) -> dict[int, list]:
    """Map fleet-fraction fault events onto shard-local worker ids.

    A fleet-fraction event faults the lowest ``round(frac × num_workers)``
    *global* worker ids — exactly the set the sequential run faults.
    Global ids map onto shards in shard order (shard s owns the contiguous
    id block after the earlier partitions), so the per-shard fault lists
    and times are a deterministic function of the plan alone.  Each entry
    is ``(local_id, fail_at_s, recover_at_s, degrade_factor)`` — the last
    element is ``None`` for hard crashes and the gray-failure speed factor
    otherwise.
    """
    starts: dict[int, int] = {}
    offset = 0
    for spec in plan.shards:
        starts[spec.shard_id] = offset
        offset += spec.num_workers
    per_shard: dict[int, list] = {spec.shard_id: [] for spec in plan.shards}
    for event in faults:
        recover_s = (
            None if event.recover_at_minute is None else event.recover_at_minute * 60.0
        )
        for worker_id in event.worker_ids(num_workers):
            for spec in plan.shards:
                start = starts[spec.shard_id]
                if start <= worker_id < start + spec.num_workers:
                    per_shard[spec.shard_id].append(
                        (
                            worker_id - start,
                            event.fail_at_minute * 60.0,
                            recover_s,
                            event.degrade_factor,
                        )
                    )
                    break
    return per_shard


#: A destination may hold this many batches per active worker in its worker
#: queues after a transfer.  Topping idle shards up to a shallow queue depth
#: every barrier beats dumping the whole budget at once: the destination
#: keeps serving at line rate, stays eligible next window, and the migration
#: rate self-limits to the spare capacity it can actually absorb.
_STEAL_DEPTH_FACTOR = 4


def _coordinate_steal(config, conns, replies, window_end_s: float) -> dict | None:
    """One barrier's work-stealing pass; returns a log entry or None.

    Source: the shard with the largest admission backlog (ties: lowest
    shard id), if it clears ``steal_backlog_threshold``.  Destinations:
    every other shard with no admission backlog of its own and spare worker
    queue depth (``_STEAL_DEPTH_FACTOR`` batches per active worker),
    least-loaded first; each takes only enough to top its queues up to that
    depth.  The coordinator asks the source for up to ``steal_max_fraction``
    of its backlog — capped by what the destinations can absorb — and
    forwards contiguous chunks (whole admission-queue tails; in-flight work
    never moves).  Stealing reacts to backlog sampled at barrier
    boundaries, so unlike the autoscale exchange it is *not* sync-window
    invariant — one reason the knob defaults off.
    """
    source = max(replies, key=lambda r: (r.admission_backlog, -r.shard_id))
    if source.admission_backlog < config.steal_backlog_threshold:
        return None
    batch = max(1, config.max_batch_size)
    takes: list[tuple[int, int]] = []
    for reply in sorted(replies, key=lambda r: (r.worker_backlog, r.shard_id)):
        if reply.shard_id == source.shard_id or reply.admission_backlog > 0:
            continue
        depth = reply.fleet.active_workers * batch * _STEAL_DEPTH_FACTOR
        spare = depth - reply.worker_backlog
        if spare > 0:
            takes.append((reply.shard_id, spare))
    budget = min(
        int(source.admission_backlog * config.steal_max_fraction),
        sum(spare for _, spare in takes),
    )
    if not takes or budget < 1:
        return None
    conns[source.shard_id].send(
        messages.StealRequest(window_end_s=window_end_s, count=budget).encode()
    )
    stolen = messages.decode(conns[source.shard_id].recv())
    entries = list(stolen.entries)
    moved: dict[int, int] = {}
    cursor = 0
    for shard_id, spare in takes:
        if cursor >= len(entries):
            break
        chunk = entries[cursor : cursor + min(spare, len(entries) - cursor)]
        conns[shard_id].send(
            messages.WorkTransfer(
                window_end_s=window_end_s, entries=tuple(chunk)
            ).encode()
        )
        moved[shard_id] = len(chunk)
        cursor += len(chunk)
    return {
        "window_end_s": window_end_s,
        "source": source.shard_id,
        "requested": budget,
        "stolen": len(entries),
        "moved": moved,
    }


def _merge_fleet_minutes(results) -> tuple[list, dict]:
    """Sum per-shard fleet minute series into a fleet-wide series."""
    from repro.cluster.cluster import FleetMinute

    minutes: dict[int, dict] = {}
    for result in results:
        for row in result.fleet_minutes:
            entry = minutes.setdefault(row["minute"], {"mean_workers": 0.0, "by_gpu": {}})
            entry["mean_workers"] += row["mean_workers"]
            for gpu, value in row["by_gpu"].items():
                entry["by_gpu"][gpu] = entry["by_gpu"].get(gpu, 0.0) + value
    series = [
        FleetMinute(
            minute=minute,
            mean_workers=minutes[minute]["mean_workers"],
            by_gpu=dict(minutes[minute]["by_gpu"]),
        )
        for minute in sorted(minutes)
    ]
    return series, {fm.minute: fm for fm in series}


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def run_scenario_sharded(
    scenario,
    preset: str = "full",
    seed: int | None = None,
    system: str | None = None,
    shards: int | None = None,
    sync_window_s: float | None = None,
    record_messages: bool = False,
):
    """Run a scenario partitioned across shard processes.

    Returns the same :class:`~repro.scenarios.runtime.ScenarioRun` shape as
    the sequential runner (``run.system`` is None for N > 1 — there is no
    single live system object), with a ``"sharding"`` block in the extras.
    ``shards=1`` delegates straight to the sequential path and is
    bit-identical to it.  ``record_messages=True`` makes every shard record
    its data-plane messages into the sharding extras (debug/verification
    mode; materially enlarges the result).
    """
    from repro.experiments.runner import ExperimentResult
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runtime import ScenarioRun, build_config, build_stream, run_scenario

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    preset_name = preset
    preset_spec = scenario.preset(preset_name)
    if seed is None:
        seed = scenario.default_seed
    seed = int(seed)

    extra: dict = {}
    if shards is not None:
        extra["shards"] = int(shards)
    if sync_window_s is not None:
        extra["sync_window_s"] = float(sync_window_s)
    config = build_config(scenario, preset_spec, seed, extra=extra)
    if config.shards <= 1:
        return run_scenario(
            scenario, preset=preset_name, seed=seed, system=system, shards=1
        )

    faults, _, _ = scenario.schedule(preset_spec)
    for event in faults:
        if event.worker_id is not None:
            raise ValueError(
                "sharded runs cannot schedule worker faults by worker_id: "
                "global worker ids do not exist in a partitioned fleet; use a "
                "fleet_fraction fault instead, which maps onto the shard "
                "partitions deterministically"
            )

    trace = scenario.trace.build(seed=seed, **preset_spec.trace_params)
    plan = plan_shards(config, trace=trace)
    fault_map = _map_faults(faults, plan, config.num_workers) if faults else None
    autoscale = bool(config.autoscale_enabled)
    stealing = bool(config.shard_work_stealing) and plan.mode == "tenant"
    scenario_dict = scenario.to_dict()
    arrival_split = _partition_arrivals(
        build_stream(scenario, preset_spec, config, trace, seed), plan
    )

    start_methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in start_methods else "spawn")
    processes = []
    conns = []
    try:
        for spec in plan.shards:
            parent_conn, child_conn = ctx.Pipe()
            payload = {
                "scenario": scenario_dict,
                "preset": preset_name,
                "seed": seed,
                "system": system,
                "shard_id": spec.shard_id,
                "num_shards": spec.num_shards,
                "num_workers": spec.num_workers,
                "tenant_names": (
                    list(spec.tenant_names) if spec.tenant_names is not None else None
                ),
                "record_messages": bool(record_messages),
                "arrivals": (
                    arrival_split[spec.shard_id] if arrival_split is not None else None
                ),
                "stealing": stealing,
                "faults": fault_map[spec.shard_id] if fault_map is not None else [],
            }
            process = ctx.Process(
                target=_shard_main, args=(payload, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            processes.append(process)
            conns.append(parent_conn)

        duration_s = trace.duration_minutes * 60.0
        boundaries = _window_boundaries(
            duration_s + preset_spec.drain_s,
            config.sync_window_s,
            epoch_s=config.autoscale_epoch_s if autoscale else None,
        )
        broker = _BudgetBroker(config, plan) if autoscale else None
        barrier_log: list[dict] = []
        steal_log: list[dict] = []
        for end, epoch in boundaries:
            window = messages.RunWindow(window_end_s=end, epoch_boundary=epoch).encode()
            for conn in conns:
                conn.send(window)
            # The recv below is the barrier: the window's merged deltas exist
            # only once every shard has reached the boundary.
            replies = [messages.decode(conn.recv()) for conn in conns]
            entry = {
                "window_end_s": end,
                "epoch": bool(epoch),
                "completions": sum(r.metrics.completions for r in replies),
                "arrivals": sum(r.metrics.arrivals for r in replies),
                "active_workers": sum(r.fleet.active_workers for r in replies),
                "failed_workers": sum(r.fleet.failed_workers for r in replies),
                "in_fleet": sum(
                    r.fleet.active_workers + r.fleet.provisioning_workers
                    for r in replies
                ),
            }
            if broker is not None:
                # Reconcile before granting: a scale-in grant the shard could
                # not apply (candidate failed meanwhile) left the ledger one
                # worker low per skip; the worker it would have drained is
                # still in the fleet, so hand the budget back.
                for reply in replies:
                    if reply.unapplied_scale_ins:
                        broker.committed[reply.shard_id] += reply.unapplied_scale_ins
                if epoch:
                    outcome_map = broker.grant(end, replies)
                    for spec, conn in zip(plan.shards, conns):
                        conn.send(outcome_map[spec.shard_id].encode())
                entry["committed_workers"] = broker.total_committed
            if stealing:
                steal_entry = _coordinate_steal(config, conns, replies, end)
                if steal_entry is not None:
                    steal_log.append(steal_entry)
            barrier_log.append(entry)
        finalize = messages.Finalize().encode()
        for conn in conns:
            conn.send(finalize)
        results = sorted(
            (messages.decode(conn.recv()) for conn in conns), key=lambda r: r.shard_id
        )
        for process in processes:
            process.join(timeout=60.0)
    finally:
        for conn in conns:
            conn.close()
        for process in processes:
            if process.is_alive():
                process.terminate()
                process.join()

    # ------------------------------------------------------------------ #
    # Deterministic merge (shard order)
    # ------------------------------------------------------------------ #
    merged = MetricsCollector(slo=config.slo, retain_completed=False)
    for result in results:
        merged.absorb_state(result.collector_state)

    duration_minutes = trace.duration_minutes
    # The same full stream the shards filtered knows the exact offered load
    # (including per-tenant extra_qpm series), matching the sequential view.
    full_stream = build_stream(scenario, preset_spec, config, trace, seed)
    offered = {
        minute: full_stream.offered_qpm(minute) for minute in range(duration_minutes)
    }
    fleet_minutes, fleet_by_minute = _merge_fleet_minutes(results)
    minute_series = merged.minute_series(offered=offered, fleet=fleet_by_minute)

    total_workers = sum(r.num_workers for r in results)
    total_batches = sum(r.batches_served for r in results)
    total_served = sum(r.requests_served for r in results)
    # With stealing on, every shard carries the full tenant table; ownership
    # (the plan's tenant placement) decides whose per-tenant rows count.
    owner: dict[str, int] = {}
    for spec in plan.shards:
        for name in spec.tenant_names or ():
            owner[name] = spec.shard_id
    tenants: tuple[TenantSummary, ...] = ()
    if config.tenants:
        rows = {}
        for result in results:
            for name, entry in result.tenant_extras.items():
                if "summary" not in entry:
                    continue
                if owner.get(name, result.shard_id) != result.shard_id:
                    continue
                rows[name] = TenantSummary(**entry["summary"])
        if stealing:
            # Stolen requests complete on other shards, so each tenant's
            # outcome columns are recomputed from the merged collector (the
            # same data summarize() reads); owner-shard-scoped fields —
            # cache hit rate, admission accounting — stay with the row.
            runtimes = build_runtimes(config.tenants, config.slo)
            for name, row in rows.items():
                stats = merged.tenant_stats(name, runtimes[name].budget_s)
                rows[name] = replace(
                    row,
                    arrivals=stats["arrivals"],
                    completions=stats["completions"],
                    dropped=stats["dropped"],
                    slo_violation_ratio=stats["violation_ratio"],
                    mean_relative_quality=stats["mean_relative_quality"],
                    p99_latency_s=stats["p99_latency_s"],
                )
        tenants = tuple(rows[spec.name] for spec in config.tenants if spec.name in rows)

    summary = summarize(
        system=results[0].system_name,
        workload=trace.name,
        collector=merged,
        duration_minutes=duration_minutes,
        cluster_utilization=sum(r.utilization * r.num_workers for r in results)
        / max(total_workers, 1),
        model_loads=sum(r.model_loads for r in results),
        mean_batch_occupancy=(total_served / total_batches) if total_batches else 1.0,
        fleet_peak_workers=sum(r.fleet_peak_workers for r in results),
        fleet_mean_workers=sum(r.fleet_mean_workers for r in results),
        workers_added=sum(r.workers_added for r in results),
        workers_retired=sum(r.workers_retired for r in results),
        gpu_hours=sum(r.gpu_hours for r in results),
        cost_usd=sum(r.cost_usd for r in results),
        tenants=tenants,
    )

    has_cache = any("cache_store_hits" in r.extras for r in results)
    store_hits = sum(r.extras.get("cache_store_hits", 0) for r in results)
    store_misses = sum(r.extras.get("cache_store_misses", 0) for r in results)
    retrieval_hits = sum(r.extras.get("retrieval_hits", 0) for r in results)
    retrieval_attempts = sum(r.extras.get("retrieval_attempts", 0) for r in results)
    cache_hit_rate = _ratio(store_hits, store_hits + store_misses) if has_cache else None
    experiment = ExperimentResult(
        system=results[0].system_name,
        workload=trace.name,
        summary=summary,
        minute_series=minute_series,
        extras={
            "cache_hit_rate": cache_hit_rate,
            "total_requests": merged.total_arrivals,
            "fleet_minutes": fleet_minutes,
        },
    )

    extras: dict = {
        "cache_hit_rate": cache_hit_rate,
        "total_requests": merged.total_arrivals,
        # Same shape as the sequential runtime's conservation extras, so the
        # contract layer verifies sharded reports with the same checks.
        "outstanding": {
            "worker_queues": sum(r.extras.get("outstanding_workers", 0) for r in results),
            "admission_backlog": sum(r.extras.get("admission_backlog", 0) for r in results),
        },
    }
    if has_cache:
        extras["retrieval_hit_rate"] = _ratio(retrieval_hits, retrieval_attempts)
        extras["retrieval_attempts"] = retrieval_attempts
        if config.tenants:
            # One entry count per shard under "shards" (instead of the
            # sequential report's single "entries") — quotas are enforced
            # per shard cache, so that is the granularity the cache-quota
            # contract must check.
            cache_tenants: dict = {}
            for result in results:
                for name, entry in result.tenant_extras.items():
                    cache = entry.get("cache")
                    if cache is None:
                        continue
                    row = cache_tenants.setdefault(
                        name, {"quota": cache["quota"], "shards": {}}
                    )
                    row["shards"][str(result.shard_id)] = cache["entries"]
            if cache_tenants:
                extras["cache_tenants"] = cache_tenants
    switches = [r.extras.get("strategy_switches") for r in results]
    if any(s is not None for s in switches):
        extras["strategy_switches"] = sum(s or 0 for s in switches)
    retrains = [r.extras.get("retraining_events") for r in results]
    if any(s is not None for s in retrains):
        extras["retraining_events"] = sum(s or 0 for s in retrains)
    if config.tenants:
        extras["fair_share_index"] = summary.fair_share_index
        admission = {}
        for result in results:
            for name, entry in result.tenant_extras.items():
                if "admission" not in entry:
                    continue
                if owner.get(name, result.shard_id) != result.shard_id:
                    continue
                admission[name] = entry["admission"]
        if admission:
            extras["admission"] = admission
    extras["sharding"] = {
        "shards": config.shards,
        "mode": plan.mode,
        "sync_window_s": config.sync_window_s,
        "windows": len(boundaries),
        "plan": [
            {
                "shard": spec.shard_id,
                "workers": spec.num_workers,
                "tenants": list(spec.tenant_names) if spec.tenant_names else None,
            }
            for spec in plan.shards
        ],
        "per_shard": [
            {
                "shard": r.shard_id,
                "arrivals": r.extras.get("arrivals", 0),
                "requests_served": r.requests_served,
                "outstanding_requests": r.outstanding_requests,
                "gpu_hours": r.gpu_hours,
            }
            for r in results
        ],
        "barriers": barrier_log,
    }
    # Barrier-aligned global fleet peak: the summed per-shard peaks in the
    # merged summary need not be simultaneous, but every barrier records the
    # true global in-fleet count at one synchronized instant — the peak over
    # those samples is what the fleet-budget contract bounds.
    fleet_samples = [entry["in_fleet"] for entry in barrier_log if "in_fleet" in entry]
    if fleet_samples:
        extras["sharding"]["fleet_peak_barrier_aligned"] = int(max(fleet_samples))
    if broker is not None:
        extras["fleet_budget"] = {
            "min_workers": broker.min_workers,
            "max_workers": broker.max_workers,
        }
        extras["sharding"]["autoscale"] = {
            "epoch_s": config.autoscale_epoch_s,
            "min_workers": broker.min_workers,
            "max_workers": broker.max_workers,
            "committed": dict(broker.committed),
            "grants": broker.grant_log,
            "denied_requests": sum(r.extras.get("scale_denials", 0) for r in results),
            "events": {
                r.shard_id: r.extras.get("autoscale_events", []) for r in results
            },
        }
    if stealing:
        extras["sharding"]["stealing"] = {
            "backlog_threshold": config.steal_backlog_threshold,
            "max_fraction": config.steal_max_fraction,
            "events": steal_log,
            "stolen_total": sum(e["stolen"] for e in steal_log),
        }
    if record_messages:
        extras["sharding"]["messages"] = {r.shard_id: list(r.messages) for r in results}

    return ScenarioRun(
        scenario=scenario,
        preset_name=preset_name,
        seed=seed,
        trace=trace,
        config=config,
        system=None,
        result=experiment,
        extras=extras,
    )
