"""Synthetic prompt substrate standing in for DiffusionDB.

The paper analyses 10k real prompts from DiffusionDB; that dataset is not
available offline, so :mod:`repro.prompts.generator` synthesises prompts with
a controllable structure (number of entities, modifiers, style tags).  The
structure determines a latent *complexity* which the quality model turns into
an approximation tolerance, making per-prompt optimal levels a learnable
function of the prompt text — exactly the property the classifier relies on.
"""

from repro.prompts.dataset import PromptDataset
from repro.prompts.embedding import PromptEmbedder
from repro.prompts.features import PromptFeaturizer
from repro.prompts.generator import Prompt, PromptGenerator

__all__ = [
    "Prompt",
    "PromptDataset",
    "PromptEmbedder",
    "PromptFeaturizer",
    "PromptGenerator",
]
