"""Synthetic text-to-image prompt generator.

Prompts are assembled from a fixed vocabulary of subjects, attributes,
actions, scenes and style tags.  The number of distinct visual concepts in a
prompt (entities, spatial relations, fine attributes) drives its *complexity*
score; complex prompts tolerate less approximation, which is how the quality
model later reproduces the paper's Observation 1 and Fig. 8 distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.simulation.randomness import stable_hash

SUBJECTS = (
    "apple", "banana", "bear", "cat", "dog", "guitar", "vase", "book",
    "mountain", "castle", "robot", "dragon", "astronaut", "city", "forest",
    "lake", "car", "bicycle", "bridge", "lighthouse", "owl", "horse",
    "sailboat", "temple", "garden", "waterfall", "man", "woman", "child",
    "wizard", "knight", "samurai", "fox", "whale", "tiger",
)

ATTRIBUTES = (
    "red", "blue", "golden", "ancient", "futuristic", "tiny", "giant",
    "glowing", "rusty", "crystal", "wooden", "marble", "neon", "misty",
    "snowy", "sunlit", "happy", "old", "young", "ornate", "minimalist",
)

ACTIONS = (
    "lying on a table", "walking with a dog", "standing in the rain",
    "flying over the city", "reading a book", "playing chess",
    "looking at the stars", "riding a horse", "sailing across the ocean",
    "climbing a mountain", "sitting by the fire", "dancing in the street",
)

SCENES = (
    "in a dense forest", "on a quiet beach", "inside a grand library",
    "under a starry sky", "in a cyberpunk alley", "on a snowy mountain peak",
    "in a sunflower field", "beside a waterfall", "in an abandoned factory",
    "at the edge of a cliff", "in a medieval marketplace", "on the moon",
)

STYLES = (
    "oil painting", "watercolor", "digital art", "photorealistic",
    "studio photography", "unreal engine", "concept art", "35mm film",
    "anime style", "baroque style", "isometric render", "pencil sketch",
)

QUALITY_TAGS = (
    "highly detailed", "8k", "4k", "trending on artstation", "sharp focus",
    "cinematic lighting", "intricate", "award winning", "masterpiece",
)


@dataclass(frozen=True)
class Prompt:
    """A single synthetic T2I prompt with its latent structure."""

    prompt_id: int
    text: str
    num_entities: int
    num_attributes: int
    num_style_tags: int
    has_action: bool
    has_scene: bool
    #: Latent visual complexity in [0, 1]; higher means harder to approximate.
    complexity: float
    #: Topic cluster the prompt was drawn from (drives cache similarity).
    topic: int = 0
    #: Tenant this prompt belongs to ("" = the anonymous single-tenant
    #: workload).  Drives admission fair-share, per-tenant SLO budgets and
    #: cache namespacing throughout the serving stack.
    tenant: str = ""
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def num_tokens(self) -> int:
        """Whitespace token count of the prompt text."""
        return len(self.text.split())

    @cached_property
    def _content_hash(self) -> int:
        # cached_property writes straight into __dict__, which frozen
        # dataclasses permit; repeated cache-key computations (one per
        # embedding lookup) then cost a dict hit instead of re-hashing the
        # whole prompt text.
        return stable_hash(self.text)

    def content_hash(self) -> int:
        """Stable hash of the prompt text (memoised per prompt object)."""
        return self._content_hash


class PromptGenerator:
    """Draws synthetic prompts with a controllable complexity distribution."""

    def __init__(
        self,
        seed: int = 0,
        num_topics: int = 24,
        complexity_bias: float = 0.0,
    ) -> None:
        """Args:
            seed: RNG seed; the same seed reproduces the same prompt stream.
            num_topics: number of topic clusters (controls cache hit locality).
            complexity_bias: shifts the complexity distribution; positive
                values produce harder prompt mixes (used for drift tests).
        """
        self._rng = np.random.default_rng(seed)
        self.num_topics = int(num_topics)
        self.complexity_bias = float(complexity_bias)
        self._counter = 0

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def generate(self, count: int) -> list[Prompt]:
        """Generate ``count`` prompts."""
        return [self.generate_one() for _ in range(count)]

    def generate_one(self) -> Prompt:
        """Generate a single prompt."""
        rng = self._rng
        topic = int(rng.integers(0, self.num_topics))
        topic_rng = np.random.default_rng(stable_hash(f"topic-{topic}") % (1 << 32))
        subject_pool = topic_rng.choice(len(SUBJECTS), size=6, replace=False)

        num_entities = int(rng.choice([1, 2, 3], p=[0.45, 0.35, 0.20]))
        num_attributes = int(rng.integers(0, 3))
        has_action = bool(rng.random() < 0.45)
        has_scene = bool(rng.random() < 0.55)
        num_style_tags = int(rng.integers(0, 4))

        parts: list[str] = []
        entity_phrases = []
        for _ in range(num_entities):
            subject = SUBJECTS[int(rng.choice(subject_pool))]
            attrs = rng.choice(ATTRIBUTES, size=min(num_attributes, 2), replace=False)
            phrase = " ".join(list(attrs) + [subject]) if num_attributes else subject
            entity_phrases.append(f"a {phrase}")
        parts.append(" and ".join(entity_phrases))
        if has_action:
            parts.append(str(rng.choice(ACTIONS)))
        if has_scene:
            parts.append(str(rng.choice(SCENES)))
        style_tags = list(rng.choice(STYLES, size=1)) if num_style_tags else []
        style_tags += list(rng.choice(QUALITY_TAGS, size=max(0, num_style_tags - 1), replace=False))
        text = ", ".join([" ".join(parts)] + style_tags)

        complexity = self._complexity(
            num_entities, num_attributes, num_style_tags, has_action, has_scene
        )
        prompt = Prompt(
            prompt_id=self._counter,
            text=text,
            num_entities=num_entities,
            num_attributes=num_attributes,
            num_style_tags=num_style_tags,
            has_action=has_action,
            has_scene=has_scene,
            complexity=complexity,
            topic=topic,
        )
        self._counter += 1
        return prompt

    def _complexity(
        self,
        num_entities: int,
        num_attributes: int,
        num_style_tags: int,
        has_action: bool,
        has_scene: bool,
    ) -> float:
        """Latent complexity in [0, 1] from the prompt structure plus noise."""
        raw = (
            0.30 * (num_entities - 1)
            + 0.09 * num_attributes
            + 0.15 * has_action
            + 0.10 * has_scene
            + 0.04 * num_style_tags
        )
        noise = self._rng.normal(0.0, 0.05)
        return float(np.clip(raw + noise + 0.05 + self.complexity_bias, 0.0, 1.0))
