"""Prompt dataset wrapper mimicking the DiffusionDB slice used in the paper.

The paper uses 10k DiffusionDB prompts in their original arrival order; this
class wraps a generated prompt list and provides the ordered-iteration,
splitting and sampling operations the rest of the system needs.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.prompts.generator import Prompt, PromptGenerator


class PromptDataset:
    """An ordered collection of prompts."""

    def __init__(self, prompts: Sequence[Prompt]) -> None:
        self._prompts = list(prompts)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def synthetic(
        cls,
        count: int = 10_000,
        seed: int = 0,
        num_topics: int = 24,
        complexity_bias: float = 0.0,
    ) -> "PromptDataset":
        """Generate a synthetic DiffusionDB-like dataset."""
        generator = PromptGenerator(
            seed=seed, num_topics=num_topics, complexity_bias=complexity_bias
        )
        return cls(generator.generate(count))

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._prompts)

    def __getitem__(self, index: int) -> Prompt:
        return self._prompts[index]

    def __iter__(self) -> Iterator[Prompt]:
        return iter(self._prompts)

    @property
    def prompts(self) -> list[Prompt]:
        """The underlying prompt list (arrival order preserved)."""
        return list(self._prompts)

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def split(self, train_fraction: float = 0.8) -> tuple["PromptDataset", "PromptDataset"]:
        """Split into (train, test) preserving arrival order."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        cut = int(round(len(self._prompts) * train_fraction))
        return PromptDataset(self._prompts[:cut]), PromptDataset(self._prompts[cut:])

    def sample(self, count: int, seed: int = 0) -> "PromptDataset":
        """Uniform sample without replacement (order preserved)."""
        if count > len(self._prompts):
            raise ValueError(f"cannot sample {count} from {len(self._prompts)} prompts")
        rng = np.random.default_rng(seed)
        indices = sorted(rng.choice(len(self._prompts), size=count, replace=False))
        return PromptDataset([self._prompts[i] for i in indices])

    def window(self, start: int, size: int) -> "PromptDataset":
        """Contiguous slice of ``size`` prompts starting at ``start``."""
        if start < 0 or size < 0:
            raise ValueError("start and size must be non-negative")
        return PromptDataset(self._prompts[start : start + size])

    def cycle(self, count: int) -> Iterator[Prompt]:
        """Yield ``count`` prompts, wrapping around when exhausted."""
        if not self._prompts:
            raise ValueError("cannot cycle an empty dataset")
        for i in range(count):
            yield self._prompts[i % len(self._prompts)]

    def complexity_summary(self) -> dict[str, float]:
        """Summary statistics of the latent complexity distribution."""
        values = np.array([p.complexity for p in self._prompts]) if self._prompts else np.array([0.0])
        return {
            "mean": float(values.mean()),
            "std": float(values.std()),
            "p10": float(np.percentile(values, 10)),
            "p50": float(np.percentile(values, 50)),
            "p90": float(np.percentile(values, 90)),
        }
