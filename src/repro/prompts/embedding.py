"""Deterministic prompt embeddings.

The real system embeds prompts with CLIP's text encoder and uses the vectors
for approximate-cache similarity search.  Here we build a hashed
bag-of-words embedding with a topic component so that prompts from the same
topic cluster land close together — that locality is what gives approximate
caching useful hit rates.
"""

from __future__ import annotations

import numpy as np

from repro.prompts.generator import Prompt
from repro.simulation.randomness import stable_hash


class PromptEmbedder:
    """Maps prompts to unit-norm float vectors."""

    def __init__(self, dim: int = 64, topic_weight: float = 0.65) -> None:
        if dim < 8:
            raise ValueError("embedding dimension must be at least 8")
        self.dim = int(dim)
        self.topic_weight = float(topic_weight)
        # Embeddings are deterministic per prompt; memoise them because the
        # cache path embeds the same prompt on every retrieval and write-back.
        self._cache: dict[tuple[int, int], np.ndarray] = {}
        self._topic_cache: dict[int, np.ndarray] = {}

    def embed_text(self, text: str) -> np.ndarray:
        """Embed raw text (hashed bag-of-words, unit norm)."""
        vector = np.zeros(self.dim, dtype=np.float64)
        tokens = [t.strip(",.") for t in text.lower().split() if t.strip(",.")]
        for token in tokens:
            index = stable_hash("tok:" + token) % self.dim
            sign = 1.0 if stable_hash("sign:" + token) % 2 == 0 else -1.0
            vector[index] += sign
        return self._normalize(vector)

    def embed(self, prompt: Prompt) -> np.ndarray:
        """Embed a structured prompt, mixing token and topic components."""
        key = (stable_hash(prompt.text), prompt.topic)
        if key in self._cache:
            return self._cache[key]
        token_vec = self.embed_text(prompt.text)
        topic_vec = self._topic_vector(prompt.topic)
        mixed = (1.0 - self.topic_weight) * token_vec + self.topic_weight * topic_vec
        embedded = self._normalize(mixed)
        self._cache[key] = embedded
        return embedded

    def embed_batch(self, prompts: list[Prompt]) -> np.ndarray:
        """Embed a list of prompts into an (n, dim) matrix."""
        if not prompts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.embed(p) for p in prompts])

    def _topic_vector(self, topic: int) -> np.ndarray:
        if topic not in self._topic_cache:
            rng = np.random.default_rng(stable_hash(f"topic-embed-{topic}") % (1 << 32))
            self._topic_cache[topic] = self._normalize(rng.normal(size=self.dim))
        return self._topic_cache[topic]

    @staticmethod
    def _normalize(vector: np.ndarray) -> np.ndarray:
        norm = np.linalg.norm(vector)
        if norm == 0:
            unit = np.zeros_like(vector)
            unit[0] = 1.0
            return unit
        return vector / norm

    @staticmethod
    def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity between two vectors."""
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(np.dot(a, b) / denom)
