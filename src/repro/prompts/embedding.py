"""Deterministic prompt embeddings.

The real system embeds prompts with CLIP's text encoder and uses the vectors
for approximate-cache similarity search.  Here we build a hashed
bag-of-words embedding with a topic component so that prompts from the same
topic cluster land close together — that locality is what gives approximate
caching useful hit rates.
"""

from __future__ import annotations

import numpy as np

from repro.prompts.generator import Prompt
from repro.simulation.randomness import stable_hash


class PromptEmbedder:
    """Maps prompts to unit-norm float vectors."""

    def __init__(self, dim: int = 64, topic_weight: float = 0.65) -> None:
        if dim < 8:
            raise ValueError("embedding dimension must be at least 8")
        self.dim = int(dim)
        self.topic_weight = float(topic_weight)
        # Embeddings are deterministic per prompt; memoise them because the
        # cache path embeds the same prompt on every retrieval and write-back.
        self._cache: dict[tuple[int, int], np.ndarray] = {}
        self._topic_cache: dict[int, np.ndarray] = {}

    def embed_text(self, text: str) -> np.ndarray:
        """Embed raw text (hashed bag-of-words, unit norm)."""
        vector = np.zeros(self.dim, dtype=np.float64)
        tokens = [t.strip(",.") for t in text.lower().split() if t.strip(",.")]
        for token in tokens:
            index = stable_hash("tok:" + token) % self.dim
            sign = 1.0 if stable_hash("sign:" + token) % 2 == 0 else -1.0
            vector[index] += sign
        return self._normalize(vector)

    def embed(self, prompt: Prompt) -> np.ndarray:
        """Embed a structured prompt, mixing token and topic components.

        The cache key reuses the hash memoised on the prompt object, so a
        repeat lookup costs two dict probes instead of re-hashing the whole
        prompt text on every retrieval / write-back.
        """
        key = (prompt.content_hash(), prompt.topic)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        embedded = self._embed_uncached(prompt)
        self._cache[key] = embedded
        return embedded

    def _embed_uncached(self, prompt: Prompt) -> np.ndarray:
        token_vec = self.embed_text(prompt.text)
        topic_vec = self._topic_vector(prompt.topic)
        mixed = (1.0 - self.topic_weight) * token_vec + self.topic_weight * topic_vec
        return self._normalize(mixed)

    def embed_batch(self, prompts: list[Prompt]) -> np.ndarray:
        """Embed a list of prompts into an (n, dim) matrix.

        Vectorized path used by cache warming: uncached prompts are mixed
        against the topic matrix in one batched operation (tokenisation is
        inherently per-prompt), then normalised row-wise with the same
        scalar norm the single-prompt path uses so both paths produce
        bit-identical vectors.
        """
        if not prompts:
            return np.zeros((0, self.dim), dtype=np.float64)
        keys = [(p.content_hash(), p.topic) for p in prompts]
        missing: dict[tuple[int, int], int] = {}
        fresh_prompts: list[Prompt] = []
        for key, prompt in zip(keys, prompts):
            if key not in self._cache and key not in missing:
                missing[key] = len(fresh_prompts)
                fresh_prompts.append(prompt)
        if fresh_prompts:
            token_matrix = np.stack([self.embed_text(p.text) for p in fresh_prompts])
            topic_matrix = np.stack([self._topic_vector(p.topic) for p in fresh_prompts])
            mixed = (1.0 - self.topic_weight) * token_matrix + self.topic_weight * topic_matrix
            for key, row in zip(missing, mixed):
                self._cache[key] = self._normalize(row)
        return np.stack([self._cache[key] for key in keys])

    def _topic_vector(self, topic: int) -> np.ndarray:
        if topic not in self._topic_cache:
            rng = np.random.default_rng(stable_hash(f"topic-embed-{topic}") % (1 << 32))
            self._topic_cache[topic] = self._normalize(rng.normal(size=self.dim))
        return self._topic_cache[topic]

    @staticmethod
    def _normalize(vector: np.ndarray) -> np.ndarray:
        norm = np.linalg.norm(vector)
        if norm == 0:
            unit = np.zeros_like(vector)
            unit[0] = 1.0
            return unit
        return vector / norm

    @staticmethod
    def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity between two vectors."""
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(np.dot(a, b) / denom)
