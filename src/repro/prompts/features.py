"""Feature extraction for the approximation-level classifier.

The production classifier is BERT-based; ours is a linear model over a small
set of interpretable structural features plus a hashed bag-of-words block.
The structural features carry the learnable signal (they correlate with the
latent complexity the generator injected); the hashed block adds realistic
sparsity and lets property tests exercise larger feature spaces.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.prompts.generator import Prompt
from repro.simulation.randomness import stable_hash


class PromptFeaturizer:
    """Turns prompts into fixed-width dense feature vectors."""

    #: Names of the structural features, in order.
    STRUCTURAL_FEATURES = (
        "num_tokens",
        "num_commas",
        "num_and",
        "num_entities_hint",
        "num_adjectives_hint",
        "has_action_hint",
        "has_scene_hint",
        "num_style_tags_hint",
    )

    #: Bound on the memoisation cache: repeated-prompt workloads fit easily,
    #: while a stream of millions of unique prompts cannot grow it without
    #: limit (~30 MiB retained at this cap).
    CACHE_MAX_ENTRIES = 65_536

    def __init__(self, hashed_dim: int = 48) -> None:
        if hashed_dim < 0:
            raise ValueError("hashed_dim must be non-negative")
        self.hashed_dim = int(hashed_dim)
        # Featurisation is deterministic per prompt text; the serving loop
        # featurises the same prompt on every routing decision, so memoise
        # per prompt hash (LRU-bounded).  Cached vectors are frozen to keep
        # accidental in-place mutation from corrupting later lookups.
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()

    @property
    def dim(self) -> int:
        """Total feature dimensionality."""
        return len(self.STRUCTURAL_FEATURES) + self.hashed_dim

    # ------------------------------------------------------------------ #
    # Featurisation
    # ------------------------------------------------------------------ #
    def featurize(self, prompt: Prompt | str) -> np.ndarray:
        """Feature vector for a single prompt (or raw text)."""
        key = prompt.content_hash() if isinstance(prompt, Prompt) else None
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                return cached
        text = prompt.text if isinstance(prompt, Prompt) else str(prompt)
        structural = self._structural_features(text)
        if self.hashed_dim == 0:
            features = structural
        else:
            features = np.concatenate([structural, self._hashed_features(text)])
        if key is not None:
            features.setflags(write=False)
            self._cache[key] = features
            if len(self._cache) > self.CACHE_MAX_ENTRIES:
                self._cache.popitem(last=False)
        return features

    def featurize_batch(self, prompts: list[Prompt | str]) -> np.ndarray:
        """Feature matrix of shape (n, dim)."""
        if not prompts:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.stack([self.featurize(p) for p in prompts])

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _structural_features(self, text: str) -> np.ndarray:
        tokens = [t.strip(",.").lower() for t in text.split() if t.strip(",.")]
        num_tokens = len(tokens)
        num_commas = text.count(",")
        num_and = sum(1 for t in tokens if t == "and")
        num_articles = sum(1 for t in tokens if t in ("a", "an", "the"))
        adjectives = sum(
            1
            for t in tokens
            if t in ("red", "blue", "golden", "ancient", "futuristic", "tiny", "giant",
                     "glowing", "rusty", "crystal", "wooden", "marble", "neon", "misty",
                     "snowy", "sunlit", "happy", "old", "young", "ornate", "minimalist")
        )
        action_words = ("lying", "walking", "standing", "flying", "reading", "playing",
                        "looking", "riding", "sailing", "climbing", "sitting", "dancing")
        scene_words = ("forest", "beach", "library", "sky", "alley", "peak", "field",
                       "waterfall", "factory", "cliff", "marketplace", "moon")
        style_words = ("painting", "watercolor", "art", "photorealistic", "photography",
                       "engine", "film", "anime", "baroque", "isometric", "sketch",
                       "detailed", "8k", "4k", "artstation", "cinematic", "masterpiece")
        features = np.array(
            [
                num_tokens / 20.0,
                num_commas / 4.0,
                float(num_and),
                float(num_articles),
                adjectives / 3.0,
                float(any(t in action_words for t in tokens)),
                float(any(t in scene_words for t in tokens)),
                sum(1 for t in tokens if t in style_words) / 3.0,
            ],
            dtype=np.float64,
        )
        return features

    def _hashed_features(self, text: str) -> np.ndarray:
        vector = np.zeros(self.hashed_dim, dtype=np.float64)
        tokens = [t.strip(",.").lower() for t in text.split() if t.strip(",.")]
        for token in tokens:
            index = stable_hash("feat:" + token) % self.hashed_dim
            vector[index] += 1.0
        max_val = vector.max()
        if max_val > 0:
            vector /= max_val
        return vector
