"""Request and completion records flowing through the cluster."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.zoo import Strategy
from repro.prompts.generator import Prompt


@dataclass(slots=True)
class Request:
    """One prompt admitted to the serving system."""

    request_id: int
    prompt: Prompt
    arrival_time_s: float
    strategy: Strategy
    #: Rank the classifier predicted as the prompt's optimal level.
    predicted_rank: int
    #: Rank the scheduler actually assigned (after the PASM shift).
    assigned_rank: int
    #: Absolute SLO deadline (arrival time + the requester's latency
    #: budget).  None outside tenant-priority queueing; requeues keep the
    #: original deadline, so a re-routed request does not jump the line.
    deadline_s: float | None = None
    #: Extra routing context (e.g. which system produced the assignment).
    metadata: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class CompletedRequest:
    """A served request with its timing and placement outcome."""

    request: Request
    worker_id: int
    start_time_s: float
    completion_time_s: float
    #: Rank the image was effectively generated at (may differ from the
    #: assigned rank, e.g. an AC cache miss degrades to K=0).
    effective_rank: int
    service_time_s: float
    retrieval_latency_s: float = 0.0
    cache_hit: bool = False
    #: True when the request attempted cache retrieval but the network was
    #: unreachable (drives the AC -> SM switch decision).
    retrieval_failed: bool = False
    #: Number of requests in the GPU pass that served this one.
    batch_size: int = 1

    @property
    def latency_s(self) -> float:
        """End-to-end latency from arrival to completion (queueing included)."""
        return self.completion_time_s - self.request.arrival_time_s

    @property
    def queueing_delay_s(self) -> float:
        """Time spent waiting in the worker queue."""
        return max(0.0, self.start_time_s - self.request.arrival_time_s)
