"""Per-GPU memory accounting.

An 80 GiB A100 can hold the SD-XL base model plus a smaller variant at the
same time (§4.6), which is what makes Argus's hitless AC→SM switch possible:
the new model loads while the old one keeps serving.  The memory manager
enforces the capacity so a worker cannot silently hold more models than fit.
"""

from __future__ import annotations


class GpuMemory:
    """Tracks the models resident on a single GPU."""

    def __init__(self, capacity_gib: float = 80.0) -> None:
        if capacity_gib <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_gib = float(capacity_gib)
        self._resident: dict[str, float] = {}

    @property
    def used_gib(self) -> float:
        """Total GiB currently occupied by resident models."""
        return sum(self._resident.values())

    @property
    def free_gib(self) -> float:
        """Remaining capacity in GiB."""
        return self.capacity_gib - self.used_gib

    @property
    def resident_models(self) -> list[str]:
        """Names of models currently resident."""
        return list(self._resident)

    def is_resident(self, model_name: str) -> bool:
        """Whether the model is already loaded."""
        return model_name in self._resident

    def can_fit(self, size_gib: float) -> bool:
        """Whether an additional ``size_gib`` model fits."""
        return size_gib <= self.free_gib + 1e-9

    def load(self, model_name: str, size_gib: float) -> None:
        """Mark a model resident.

        Raises:
            MemoryError: if the model does not fit; callers should evict
                first (Argus unloads the previous variant in the background).
        """
        if self.is_resident(model_name):
            return
        if not self.can_fit(size_gib):
            raise MemoryError(
                f"cannot load {model_name} ({size_gib:.1f} GiB): only "
                f"{self.free_gib:.1f} GiB free of {self.capacity_gib:.1f} GiB"
            )
        self._resident[model_name] = float(size_gib)

    def unload(self, model_name: str) -> bool:
        """Evict a model; returns False when it was not resident."""
        return self._resident.pop(model_name, None) is not None

    def clear(self) -> None:
        """Evict everything (e.g. when a worker is reset)."""
        self._resident.clear()
