"""Simulated GPU cluster substrate.

Workers are event-driven queueing stations attached to the shared
:class:`~repro.simulation.engine.SimulationEngine`.  Each worker serves
dynamic batches at a single approximation level, holds one or two models in
GPU memory, pays the Table-2 load latency when switching SM variants, and
can be failed / recovered to reproduce the fault experiments (Fig. 20).
The fleet is elastic and heterogeneous: workers carry per-type GPU specs
(Fig. 5 relative speeds, native memory sizes) and can be provisioned or
drained at runtime by the autoscaler.
"""

from repro.cluster.memory import GpuMemory
from repro.cluster.requests import CompletedRequest, Request
from repro.cluster.worker import Worker, WorkerState
from repro.cluster.cluster import FleetLogEntry, FleetMinute, GpuCluster

__all__ = [
    "CompletedRequest",
    "FleetLogEntry",
    "FleetMinute",
    "GpuCluster",
    "GpuMemory",
    "Request",
    "Worker",
    "WorkerState",
]
