"""Simulated GPU cluster substrate.

Workers are event-driven queueing stations attached to the shared
:class:`~repro.simulation.engine.SimulationEngine`.  Each worker serves one
request at a time (batch size 1, per Observation 5), holds one or two models
in GPU memory, pays the Table-2 load latency when switching SM variants, and
can be failed / recovered to reproduce the fault experiments (Fig. 20).
"""

from repro.cluster.memory import GpuMemory
from repro.cluster.requests import CompletedRequest, Request
from repro.cluster.worker import Worker, WorkerState
from repro.cluster.cluster import GpuCluster

__all__ = [
    "CompletedRequest",
    "GpuCluster",
    "GpuMemory",
    "Request",
    "Worker",
    "WorkerState",
]
