"""The fixed-size GPU cluster: workers, failure injection and utilisation."""

from __future__ import annotations

from typing import Callable

from repro.cache.approximate import ApproximateCache
from repro.cluster.requests import CompletedRequest, Request
from repro.cluster.worker import Worker
from repro.models.zoo import ApproximationLevel, ModelZoo, Strategy
from repro.simulation.engine import SimulationEngine


class GpuCluster:
    """A fixed pool of GPU workers sharing one simulation engine."""

    def __init__(
        self,
        engine: SimulationEngine,
        zoo: ModelZoo,
        num_workers: int = 8,
        initial_level: ApproximationLevel | None = None,
        cache: ApproximateCache | None = None,
        memory_capacity_gib: float = 80.0,
        on_complete: Callable[[CompletedRequest], None] | None = None,
        on_requeue: Callable[[Request], None] | None = None,
        blocking_loads: bool = False,
        max_batch_size: int = 1,
        batch_timeout_s: float = 0.0,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("cluster needs at least one worker")
        self.engine = engine
        self.zoo = zoo
        self.cache = cache
        #: Per-worker dynamic-batching knobs (1 / 0.0 = batch-size-1 serving).
        self.max_batch_size = int(max_batch_size)
        self.batch_timeout_s = float(batch_timeout_s)
        level = initial_level or zoo.exact_level(Strategy.AC)
        self.workers: list[Worker] = [
            Worker(
                worker_id=i,
                engine=engine,
                zoo=zoo,
                level=level,
                cache=cache,
                memory_capacity_gib=memory_capacity_gib,
                on_complete=on_complete,
                on_requeue=on_requeue,
                blocking_load=blocking_loads,
                max_batch_size=max_batch_size,
                batch_timeout_s=batch_timeout_s,
            )
            for i in range(num_workers)
        ]

    # ------------------------------------------------------------------ #
    # Topology queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.workers)

    @property
    def num_workers(self) -> int:
        """Total number of workers, healthy or failed."""
        return len(self.workers)

    @property
    def healthy_workers(self) -> list[Worker]:
        """Workers currently able to serve."""
        return [w for w in self.workers if not w.is_failed]

    def workers_at_level(self, rank: int, strategy: Strategy | str | None = None) -> list[Worker]:
        """Healthy workers serving at approximation rank ``rank``."""
        strategy = Strategy(strategy) if strategy is not None else None
        return [
            w
            for w in self.healthy_workers
            if w.level.rank == rank and (strategy is None or w.strategy == strategy)
        ]

    def level_assignment(self) -> dict[int, int]:
        """Mapping worker id -> current approximation rank (healthy only)."""
        return {w.worker_id: w.level.rank for w in self.healthy_workers}

    def total_queue_length(self) -> int:
        """Total requests queued **or in service** across healthy workers.

        Includes in-flight batch members; for a backlog signal use
        :meth:`total_queued_requests`, which counts only waiting requests.
        """
        return sum(w.outstanding for w in self.healthy_workers)

    def total_queued_requests(self) -> int:
        """Requests waiting in queues (excluding in-service batch members).

        The backlog signal for control loops: with batching enabled a busy
        worker legitimately holds up to ``max_batch_size`` requests in
        service, so counting those as backlog would misread steady state.
        """
        return sum(w.queue_length for w in self.healthy_workers)

    def backlog_slack(self, per_worker: float = 1.0) -> float:
        """Queued requests the cluster holds in normal operation.

        Up to one full batch legitimately waits behind each in-flight GPU
        pass, so the slack scales with the batch limit; control loops treat
        only queue depth beyond this as backlog.
        """
        return per_worker * len(self.healthy_workers) * max(1, self.max_batch_size)

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def apply_assignment(self, ranks_per_worker: dict[int, ApproximationLevel]) -> dict[int, float]:
        """Set each worker's level; returns per-worker switching delays."""
        delays = {}
        for worker in self.healthy_workers:
            if worker.worker_id in ranks_per_worker:
                delays[worker.worker_id] = worker.set_level(ranks_per_worker[worker.worker_id])
        return delays

    def dispatch(self, request: Request, worker_id: int) -> None:
        """Send a request to a specific worker."""
        worker = self.workers[worker_id]
        if worker.is_failed:
            raise RuntimeError(f"cannot dispatch to failed worker {worker_id}")
        worker.enqueue(request)

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #
    def fail_worker(self, worker_id: int) -> list[Request]:
        """Fail a worker immediately, returning orphaned requests."""
        return self.workers[worker_id].fail()

    def recover_worker(self, worker_id: int, level: ApproximationLevel | None = None) -> None:
        """Recover a failed worker."""
        self.workers[worker_id].recover(level)

    def schedule_failure(
        self, worker_id: int, fail_at_s: float, recover_at_s: float | None = None
    ) -> None:
        """Schedule a failure (and optional recovery) on the engine."""
        self.engine.schedule_at(
            fail_at_s, lambda _e: self.fail_worker(worker_id), name=f"fail-w{worker_id}"
        )
        if recover_at_s is not None:
            if recover_at_s <= fail_at_s:
                raise ValueError("recovery must happen after the failure")
            self.engine.schedule_at(
                recover_at_s,
                lambda _e: self.recover_worker(worker_id),
                name=f"recover-w{worker_id}",
            )

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def utilization(self, elapsed_s: float | None = None) -> float:
        """Mean busy fraction across all workers."""
        elapsed = elapsed_s if elapsed_s is not None else self.engine.now
        if elapsed <= 0 or not self.workers:
            return 0.0
        return sum(w.utilization(elapsed) for w in self.workers) / len(self.workers)

    def total_requests_served(self) -> int:
        """Requests completed across all workers."""
        return sum(w.stats.requests_served for w in self.workers)

    def total_model_loads(self) -> int:
        """Model load operations performed across all workers."""
        return sum(w.stats.model_loads for w in self.workers)

    def total_batches_served(self) -> int:
        """GPU passes executed across all workers."""
        return sum(w.stats.batches_served for w in self.workers)

    def mean_batch_occupancy(self) -> float:
        """Mean requests per GPU pass across the cluster (1.0 when idle)."""
        batches = self.total_batches_served()
        if batches == 0:
            return 1.0
        return self.total_requests_served() / batches
