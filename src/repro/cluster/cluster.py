"""The elastic GPU cluster: heterogeneous workers, runtime scaling, failure
injection and utilisation/cost accounting.

The cluster started life as a fixed homogeneous pool; it now supports an
elastic fleet: workers carry a per-type :class:`~repro.models.gpus.GpuSpec`
(service times scale with the Fig. 5 relative speeds, memory defaults to the
GPU's native HBM size), new workers can be provisioned at runtime (node
provisioning delay plus model warm-up before entering rotation) and drained
out on scale-in without dropping their in-flight batch.  A fleet log records
every rotation change so experiments can report fleet-size minute series,
GPU-hours and dollar cost.  With a homogeneous reference-GPU fleet and no
scaling events the behaviour is bit-for-bit the original fixed pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cache.approximate import ApproximateCache
from repro.cluster.requests import CompletedRequest, Request
from repro.cluster.worker import Worker
from repro.models.gpus import GpuSpec
from repro.models.zoo import ApproximationLevel, ModelZoo, Strategy
from repro.simulation.engine import SimulationEngine


@dataclass(frozen=True)
class FleetLogEntry:
    """One change to the set of workers in rotation."""

    time_s: float
    #: Workers in rotation (healthy, not provisioning/draining/retired).
    active: int
    #: Active worker count per GPU type.
    by_gpu: dict[str, int] = field(default_factory=dict)
    reason: str = ""


@dataclass(frozen=True)
class FleetMinute:
    """Time-weighted fleet composition over one simulated minute."""

    minute: int
    mean_workers: float
    by_gpu: dict[str, float] = field(default_factory=dict)


class GpuCluster:
    """An elastic pool of GPU workers sharing one simulation engine."""

    def __init__(
        self,
        engine: SimulationEngine,
        zoo: ModelZoo,
        num_workers: int = 8,
        initial_level: ApproximationLevel | None = None,
        cache: ApproximateCache | None = None,
        memory_capacity_gib: float | None = 80.0,
        on_complete: Callable[[CompletedRequest], None] | None = None,
        on_requeue: Callable[[Request], None] | None = None,
        blocking_loads: bool = False,
        max_batch_size: int = 1,
        batch_timeout_s: float = 0.0,
        gpu_types: Sequence[GpuSpec | str] | None = None,
        queue_policy: str = "fifo",
        tenant_weights: dict[str, float] | None = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("cluster needs at least one worker")
        if gpu_types is not None and len(gpu_types) != num_workers:
            raise ValueError("gpu_types must list one GPU per initial worker")
        self.engine = engine
        self.zoo = zoo
        self.cache = cache
        #: Per-worker dynamic-batching knobs (1 / 0.0 = batch-size-1 serving).
        self.max_batch_size = int(max_batch_size)
        self.batch_timeout_s = float(batch_timeout_s)
        # Construction parameters reused verbatim for workers added later.
        self._memory_capacity_gib = memory_capacity_gib
        self._on_complete = on_complete
        self._on_requeue = on_requeue
        self._blocking_loads = blocking_loads
        self._queue_policy = queue_policy
        self._tenant_weights = dict(tenant_weights) if tenant_weights else None
        level = initial_level or zoo.exact_level(Strategy.AC)
        self._initial_level = level
        self.workers: list[Worker] = [
            self._make_worker(
                worker_id=i,
                level=level,
                gpu=gpu_types[i] if gpu_types is not None else None,
                provisioning=False,
            )
            for i in range(num_workers)
        ]
        #: Scale events observed (provisioned workers entering rotation /
        #: workers drained out); failures do not count as scaling.
        self.workers_added = 0
        self.workers_retired = 0
        #: Gray-failure injections applied over the run's lifetime.
        self.workers_degraded = 0
        self.fleet_log: list[FleetLogEntry] = []
        self._log_fleet("initial fleet")

    def _make_worker(
        self,
        worker_id: int,
        level: ApproximationLevel,
        gpu: GpuSpec | str | None,
        provisioning: bool,
    ) -> Worker:
        return Worker(
            worker_id=worker_id,
            engine=self.engine,
            zoo=self.zoo,
            level=level,
            cache=self.cache,
            memory_capacity_gib=self._memory_capacity_gib,
            on_complete=self._on_complete,
            on_requeue=self._on_requeue,
            blocking_load=self._blocking_loads,
            max_batch_size=self.max_batch_size,
            batch_timeout_s=self.batch_timeout_s,
            gpu=gpu,
            provisioning=provisioning,
            queue_policy=self._queue_policy,
            tenant_weights=self._tenant_weights,
        )

    # ------------------------------------------------------------------ #
    # Topology queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.workers)

    @property
    def num_workers(self) -> int:
        """Total number of workers ever created (including retired)."""
        return len(self.workers)

    @property
    def healthy_workers(self) -> list[Worker]:
        """Workers currently in rotation and able to serve."""
        return [w for w in self.workers if w.is_active]

    @property
    def provisioning_workers(self) -> list[Worker]:
        """Workers allocated but not yet in rotation."""
        return [w for w in self.workers if w.is_provisioning]

    @property
    def fleet_size(self) -> int:
        """Number of workers currently in rotation."""
        return len(self.healthy_workers)

    def total_speed_factor(self, include_provisioning: bool = False) -> float:
        """Sum of relative GPU speeds over the active fleet (Eq. 1 units).

        On a homogeneous reference-GPU fleet this equals the worker count
        exactly, so capacity formulas written against it reproduce the old
        ``num_workers × rate`` model bit-for-bit.
        """
        total = sum(w.speed_factor for w in self.healthy_workers)
        if include_provisioning:
            total += sum(w.speed_factor for w in self.provisioning_workers)
        return total

    def fleet_ceiling_qpm(
        self, strategy: Strategy | str, include_provisioning: bool = False
    ) -> float:
        """Max sustainable QPM with every worker at the fastest level.

        Heterogeneity-aware: each worker contributes the fastest level's
        batched peak scaled by its GPU speed.
        """
        batch = max(1, self.max_batch_size)
        peak = self.zoo.batched_peak_qpm(self.zoo.fastest_level(strategy), batch)
        return peak * self.total_speed_factor(include_provisioning)

    def workers_at_level(self, rank: int, strategy: Strategy | str | None = None) -> list[Worker]:
        """Healthy workers serving at approximation rank ``rank``."""
        strategy = Strategy(strategy) if strategy is not None else None
        return [
            w
            for w in self.healthy_workers
            if w.level.rank == rank and (strategy is None or w.strategy == strategy)
        ]

    def all_at_fastest_level(self, strategy: Strategy | str) -> bool:
        """The §6 saturation signal: every healthy worker already serves at
        the most approximate level, so quality can no longer buy throughput."""
        healthy = self.healthy_workers
        if not healthy:
            return False
        fastest_rank = self.zoo.fastest_level(strategy).rank
        return all(w.level.rank >= fastest_rank for w in healthy)

    def level_assignment(self) -> dict[int, int]:
        """Mapping worker id -> current approximation rank (healthy only)."""
        return {w.worker_id: w.level.rank for w in self.healthy_workers}

    def total_queue_length(self) -> int:
        """Total requests queued **or in service** across healthy workers.

        Includes in-flight batch members; for a backlog signal use
        :meth:`total_queued_requests`, which counts only waiting requests.
        """
        return sum(w.outstanding for w in self.healthy_workers)

    def total_queued_requests(self) -> int:
        """Requests waiting in queues (excluding in-service batch members).

        The backlog signal for control loops: with batching enabled a busy
        worker legitimately holds up to ``max_batch_size`` requests in
        service, so counting those as backlog would misread steady state.
        """
        return sum(w.queue_length for w in self.healthy_workers)

    def backlog_slack(self, per_worker: float = 1.0) -> float:
        """Queued requests the cluster holds in normal operation.

        Up to one full batch legitimately waits behind each in-flight GPU
        pass, so the slack scales with the batch limit; control loops treat
        only queue depth beyond this as backlog.
        """
        return per_worker * len(self.healthy_workers) * max(1, self.max_batch_size)

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def apply_assignment(self, ranks_per_worker: dict[int, ApproximationLevel]) -> dict[int, float]:
        """Set each worker's level; returns per-worker switching delays."""
        delays = {}
        for worker in self.healthy_workers:
            if worker.worker_id in ranks_per_worker:
                delays[worker.worker_id] = worker.set_level(ranks_per_worker[worker.worker_id])
        return delays

    def dispatch(self, request: Request, worker_id: int) -> None:
        """Send a request to a specific worker.

        A routing decision can race with a failure or a scale-in drain on
        its target; when a requeue hook is configured the request is handed
        back for re-routing instead of being lost to a ``RuntimeError``.
        """
        worker = self.workers[worker_id]
        if not worker.is_active:
            if self._on_requeue is not None:
                self._on_requeue(request)
                return
            raise RuntimeError(
                f"cannot dispatch to worker {worker_id} ({worker.state.value})"
            )
        worker.enqueue(request)

    # ------------------------------------------------------------------ #
    # Elastic scaling
    # ------------------------------------------------------------------ #
    def provision_worker(
        self,
        gpu: GpuSpec | str | None = None,
        level: ApproximationLevel | None = None,
        provision_delay_s: float = 0.0,
        on_ready: Callable[[Worker], None] | None = None,
    ) -> Worker:
        """Add a worker to the fleet at runtime (scale-out).

        The worker exists immediately (and is billed from now) but stays
        outside the rotation for ``provision_delay_s`` plus the Table-2
        warm-up load of its serving model; only then does it start taking
        requests.  Returns the new worker.
        """
        if provision_delay_s < 0:
            raise ValueError("provision_delay_s must be non-negative")
        level = level or self._initial_level
        worker = self._make_worker(
            worker_id=len(self.workers),
            level=level,
            gpu=gpu,
            provisioning=True,
        )
        self.workers.append(worker)
        warmup_s = worker.load_time_for_level(level)

        def enroll() -> None:
            worker.enter_rotation()
            self.workers_added += 1
            self._log_fleet(f"worker {worker.worker_id} ({worker.gpu.name}) joined")
            if on_ready is not None:
                on_ready(worker)

        def ready(_engine: SimulationEngine) -> None:
            if worker.is_provisioning:
                enroll()
            elif worker.is_failed and worker.enrolled_at_s is None:
                # Failed during provisioning: enroll when it recovers.
                worker._deferred_enroll = enroll

        self.engine.schedule_in(
            provision_delay_s + warmup_s, ready, name=f"provision-w{worker.worker_id}"
        )
        return worker

    def drain_worker(self, worker_id: int) -> list[Request]:
        """Remove a worker from rotation gracefully (scale-in).

        The worker stops taking new requests immediately; queued requests
        are requeued for re-routing and the in-flight batch completes before
        the worker retires.  Returns the requeued requests.
        """
        worker = self.workers[worker_id]
        was_active = worker.is_active
        # Only workers that actually joined the rotation count as retired
        # (once): cancelling a still-provisioning scale-out is not a
        # scale-in, and draining/failed-never-enrolled workers were already
        # out of rotation.
        counts_as_retired = was_active or (
            worker.is_failed and worker.enrolled_at_s is not None
        )
        orphans = worker.begin_drain()
        if counts_as_retired:
            self.workers_retired += 1
        if was_active:
            self._log_fleet(f"worker {worker_id} drained")
        return orphans

    # ------------------------------------------------------------------ #
    # Failure injection
    # ------------------------------------------------------------------ #
    def fail_worker(self, worker_id: int) -> list[Request]:
        """Fail a worker immediately, returning orphaned requests."""
        orphans = self.workers[worker_id].fail()
        self._log_fleet(f"worker {worker_id} failed")
        return orphans

    def recover_worker(self, worker_id: int, level: ApproximationLevel | None = None) -> None:
        """Recover a failed worker."""
        self.workers[worker_id].recover(level)
        self._log_fleet(f"worker {worker_id} recovered")

    def schedule_failure(
        self, worker_id: int, fail_at_s: float, recover_at_s: float | None = None
    ) -> None:
        """Schedule a failure (and optional recovery) on the engine."""
        self.engine.schedule_at(
            fail_at_s, lambda _e: self.fail_worker(worker_id), name=f"fail-w{worker_id}"
        )
        if recover_at_s is not None:
            if recover_at_s <= fail_at_s:
                raise ValueError("recovery must happen after the failure")
            self.engine.schedule_at(
                recover_at_s,
                lambda _e: self.recover_worker(worker_id),
                name=f"recover-w{worker_id}",
            )

    def degrade_worker(self, worker_id: int, factor: float) -> None:
        """Gray-fail a worker: in rotation, at ``factor`` of its speed."""
        self.workers[worker_id].degrade(factor)
        self.workers_degraded += 1
        self._log_fleet(f"worker {worker_id} degraded to {factor:g}x")

    def restore_worker(self, worker_id: int) -> None:
        """End a worker's gray failure, restoring full speed."""
        self.workers[worker_id].restore_speed()
        self._log_fleet(f"worker {worker_id} restored to full speed")

    def schedule_degradation(
        self,
        worker_id: int,
        factor: float,
        degrade_at_s: float,
        restore_at_s: float | None = None,
    ) -> None:
        """Schedule a gray failure (and optional restore) on the engine."""
        if not 0.0 < factor < 1.0:
            raise ValueError("degrade factor must be in (0, 1)")
        self.engine.schedule_at(
            degrade_at_s,
            lambda _e: self.degrade_worker(worker_id, factor),
            name=f"degrade-w{worker_id}",
        )
        if restore_at_s is not None:
            if restore_at_s <= degrade_at_s:
                raise ValueError("restore must happen after the degradation")
            self.engine.schedule_at(
                restore_at_s,
                lambda _e: self.restore_worker(worker_id),
                name=f"restore-w{worker_id}",
            )

    # ------------------------------------------------------------------ #
    # Fleet accounting
    # ------------------------------------------------------------------ #
    def _log_fleet(self, reason: str) -> None:
        active = self.healthy_workers
        by_gpu: dict[str, int] = {}
        for worker in active:
            by_gpu[worker.gpu.name] = by_gpu.get(worker.gpu.name, 0) + 1
        self.fleet_log.append(
            FleetLogEntry(
                time_s=self.engine.now, active=len(active), by_gpu=by_gpu, reason=reason
            )
        )

    def fleet_minute_series(self, duration_minutes: int) -> list[FleetMinute]:
        """Time-weighted fleet size (total and per GPU type) per minute."""
        series: list[FleetMinute] = []
        log = self.fleet_log
        if not log or duration_minutes <= 0:
            return series
        index = 0
        for minute in range(int(duration_minutes)):
            start, end = minute * 60.0, (minute + 1) * 60.0
            # Advance to the last entry at or before the minute start.
            while index + 1 < len(log) and log[index + 1].time_s <= start:
                index += 1
            total = 0.0
            by_gpu: dict[str, float] = {}
            cursor, i = start, index
            while cursor < end:
                entry = log[i]
                next_change = (
                    log[i + 1].time_s if i + 1 < len(log) and log[i + 1].time_s < end else end
                )
                span = max(0.0, next_change - cursor)
                total += entry.active * span
                for gpu_name, count in entry.by_gpu.items():
                    by_gpu[gpu_name] = by_gpu.get(gpu_name, 0.0) + count * span
                cursor = next_change
                if i + 1 < len(log) and log[i + 1].time_s <= next_change:
                    i += 1
            series.append(
                FleetMinute(
                    minute=minute,
                    mean_workers=total / 60.0,
                    by_gpu={name: value / 60.0 for name, value in by_gpu.items()},
                )
            )
        return series

    def fleet_stats(self, until_s: float) -> tuple[int, float]:
        """(peak, time-weighted mean) workers in rotation over [0, until_s]."""
        log = self.fleet_log
        if not log or until_s <= 0:
            return 0, 0.0
        peak = 0
        weighted = 0.0
        for i, entry in enumerate(log):
            if entry.time_s >= until_s:
                break
            end = log[i + 1].time_s if i + 1 < len(log) else until_s
            end = min(end, until_s)
            if end > entry.time_s:
                weighted += entry.active * (end - entry.time_s)
            peak = max(peak, entry.active)
        return peak, weighted / until_s

    def gpu_hours(self, until_s: float) -> float:
        """Billable GPU-hours across the fleet up to ``until_s``."""
        return sum(w.billed_s(until_s) for w in self.workers) / 3600.0

    def total_cost_usd(self, until_s: float) -> float:
        """Dollar cost of the fleet up to ``until_s`` (per-GPU list prices)."""
        return sum(
            w.billed_s(until_s) / 3600.0 * w.gpu.hourly_cost_usd for w in self.workers
        )

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def utilization(self, elapsed_s: float | None = None) -> float:
        """Mean busy fraction across workers, each normalised by its own
        enrolled-and-healthy time (late joiners and failure downtime do not
        dilute the figure)."""
        elapsed = elapsed_s if elapsed_s is not None else self.engine.now
        if elapsed <= 0 or not self.workers:
            return 0.0
        enrolled = [w for w in self.workers if w.enrolled_healthy_s(elapsed) > 0]
        if not enrolled:
            return 0.0
        return sum(w.utilization(elapsed) for w in enrolled) / len(enrolled)

    def total_requests_served(self) -> int:
        """Requests completed across all workers."""
        return sum(w.stats.requests_served for w in self.workers)

    def total_model_loads(self) -> int:
        """Model load operations performed across all workers."""
        return sum(w.stats.model_loads for w in self.workers)

    def total_batches_served(self) -> int:
        """GPU passes executed across all workers."""
        return sum(w.stats.batches_served for w in self.workers)

    def mean_batch_occupancy(self) -> float:
        """Mean requests per GPU pass across the cluster (1.0 when idle)."""
        batches = self.total_batches_served()
        if batches == 0:
            return 1.0
        return self.total_requests_served() / batches
