"""Worker queue disciplines.

The default worker queue is a plain FIFO ``deque`` — bit-for-bit the
behaviour the determinism tests pin.  :class:`TenantPriorityQueue` is the
multi-tenant alternative: one subqueue per tenant ordered
earliest-deadline-first (deadline = arrival time + the tenant's SLO budget),
with weighted deficit round-robin deciding which tenant's head request is
served next.

Plain EDF across tenants would be wrong here: a flash-crowd tenant's
admission-delayed requests carry *older* arrival times than the quiet
tenant's fresh trickle, so a global EDF order would serve the offender
first — the classic EDF-under-overload failure.  DRR keeps the share split
by weight regardless of how stale the backlog is, and EDF only orders
requests *within* one tenant, where it is safe.

Both disciplines expose the same tiny surface (``append`` / ``popleft`` /
``__len__`` / ``__iter__`` / ``clear``), so :class:`~repro.cluster.worker.
Worker` is agnostic to which one it holds.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Mapping

from repro.cluster.requests import Request


class TenantPriorityQueue:
    """Weighted-DRR across per-tenant EDF subqueues.

    Selection: tenants with queued work are visited in a fixed ring (first-
    seen order, which is deterministic because enqueues are).  Each visit
    credits the tenant's deficit counter with its weight; the first tenant
    whose credit covers one request serves its earliest-deadline request and
    pays 1.  A tenant with 3x the weight therefore drains 3x as fast under
    contention, and a lone backlogged tenant still gets every slot.
    """

    def __init__(self, weights: Mapping[str, float] | None = None) -> None:
        self._weights = dict(weights or {})
        #: DRR credit banks the weight *ratio* to the heaviest configured
        #: tenant, not the absolute weight.  Absolute credit would let a
        #: uniform rescale of every tenant's weight change the serve
        #: interleaving (weight 2.0 banks two serves per visit where 1.0
        #: banks one), breaking the weight-scaling metamorphic contract;
        #: ratios keep "double every weight" a strict no-op.
        self._max_weight = max(
            [1e-9, *(float(weight) for weight in self._weights.values())]
        )
        #: tenant -> heap of (deadline_s, seq, request)
        self._subqueues: dict[str, list[tuple[float, int, Request]]] = {}
        #: Ring of tenant names in first-seen order.
        self._ring: list[str] = []
        self._deficits: dict[str, float] = {}
        self._cursor = 0
        self._seq = 0
        self._size = 0

    def _weight(self, tenant: str) -> float:
        weight = max(1e-9, float(self._weights.get(tenant, self._max_weight)))
        return weight / self._max_weight

    @staticmethod
    def _deadline(request: Request) -> float:
        deadline = getattr(request, "deadline_s", None)
        return float(deadline) if deadline is not None else float(request.arrival_time_s)

    def append(self, request: Request) -> None:
        """Admit ``request`` into its tenant's EDF subqueue."""
        tenant = request.prompt.tenant
        queue = self._subqueues.get(tenant)
        if queue is None:
            queue = self._subqueues[tenant] = []
            self._ring.append(tenant)
            self._deficits.setdefault(tenant, 0.0)
        heapq.heappush(queue, (self._deadline(request), self._seq, request))
        self._seq += 1
        self._size += 1

    def popleft(self) -> Request:
        """Serve the next request per weighted-DRR + per-tenant EDF."""
        if self._size == 0:
            raise IndexError("pop from an empty TenantPriorityQueue")
        # The cursor stays on a tenant while its banked credit covers more
        # requests (that burst is what makes a 3x weight drain 3x as fast —
        # advancing after every serve would flatten all weights >= 1 to an
        # even round-robin) and advances once the credit drops below one
        # serve.  Bounded: each full ring pass credits every backlogged
        # tenant by its weight, so a serve happens within ceil(1/min_weight)
        # passes.
        while True:
            tenant = self._ring[self._cursor % len(self._ring)]
            queue = self._subqueues[tenant]
            if not queue:
                # Idle tenants hold no credit: DRR resets the deficit when
                # the subqueue empties so quiet tenants cannot bank slots.
                self._deficits[tenant] = 0.0
                self._cursor += 1
                continue
            if self._deficits[tenant] >= 1.0:
                self._deficits[tenant] -= 1.0
                _, _, request = heapq.heappop(queue)
                self._size -= 1
                if self._deficits[tenant] < 1.0 or not queue:
                    self._cursor += 1
                return request
            self._deficits[tenant] += self._weight(tenant)
            if self._deficits[tenant] < 1.0:
                self._cursor += 1

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Request]:
        """All queued requests, tenants in ring order, EDF within a tenant.

        Used by drain/fail to hand the backlog back for re-routing; the
        order is deterministic so requeue cascades replay identically.
        """
        for tenant in self._ring:
            for _, _, request in sorted(self._subqueues[tenant]):
                yield request

    def clear(self) -> None:
        self._subqueues = {}
        self._ring = []
        self._deficits = {}
        self._cursor = 0
        self._size = 0
