"""An event-driven GPU worker with dynamic batching.

A worker drains its queue into batches of up to ``max_batch_size`` requests,
optionally waiting ``batch_timeout_s`` for a batch to form, and serves every
request in a batch in one GPU pass whose cost follows the model's Fig. 14
batching profile (diffusion models plateau quickly, so batches buy a modest
but real throughput gain).  With ``max_batch_size=1`` the worker behaves
exactly like the original batch-size-1 serving path.

The worker operates at a single approximation level set by the allocator and
pays the model-load latency when asked to switch to a different SM variant.
The GPU has room for two resident diffusion models, so loads happen in the
background while the old model keeps serving — the mechanism behind Argus's
hitless strategy switch.

Workers are heterogeneity-aware: each carries a :class:`GpuSpec` and scales
every service time by its speed relative to the zoo's reference GPU (the
Fig. 5 latency matrix applied per worker).  They also have an elastic
lifecycle: a worker may be created in the ``PROVISIONING`` state (outside
the serving rotation until its node and model warm-up are ready) and later
drained out of rotation (``DRAINING`` → ``RETIRED``) without dropping its
in-flight batch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.cache.approximate import ApproximateCache
from repro.cluster.memory import GpuMemory
from repro.cluster.queues import TenantPriorityQueue
from repro.cluster.requests import CompletedRequest, Request
from repro.models.gpus import GpuSpec, gpu_by_name
from repro.models.latency import LatencyModel
from repro.models.variants import SM_VARIANTS
from repro.models.zoo import ApproximationLevel, ModelZoo, Strategy
from repro.simulation.engine import Event, SimulationEngine


class WorkerState(str, Enum):
    """Lifecycle state of a worker."""

    #: Node allocated but not yet in rotation (provisioning + model warm-up).
    PROVISIONING = "provisioning"
    IDLE = "idle"
    BUSY = "busy"
    FAILED = "failed"
    #: Finishing its in-flight batch, accepting no new requests.
    DRAINING = "draining"
    #: Permanently removed from the fleet (scale-in completed).
    RETIRED = "retired"


@dataclass(frozen=True, slots=True)
class ServiceProfile:
    """Per-request serving cost computed at batch launch."""

    #: Full single-request wall time (compute + overheads), jittered.
    service_time_s: float
    effective_rank: int
    retrieval_latency_s: float
    cache_hit: bool
    retrieval_failed: bool
    #: Non-compute portion of ``service_time_s`` (cache retrieval and outage
    #: penalty); batching amortises compute, not this.
    overhead_s: float = 0.0


@dataclass
class WorkerStats:
    """Aggregate counters for one worker."""

    requests_served: int = 0
    busy_time_s: float = 0.0
    model_loads: int = 0
    load_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Number of GPU passes (batches) executed; at batch size 1 this equals
    #: ``requests_served``.
    batches_served: int = 0
    #: Largest batch this worker has executed.
    max_batch_served: int = 0

    @property
    def mean_batch_occupancy(self) -> float:
        """Mean requests per executed batch (1.0 when nothing served yet)."""
        if self.batches_served == 0:
            return 1.0
        return self.requests_served / self.batches_served


class Worker:
    """A single GPU worker in the serving cluster."""

    def __init__(
        self,
        worker_id: int,
        engine: SimulationEngine,
        zoo: ModelZoo,
        level: ApproximationLevel,
        cache: ApproximateCache | None = None,
        memory_capacity_gib: float | None = 80.0,
        on_complete: Callable[[CompletedRequest], None] | None = None,
        on_requeue: Callable[[Request], None] | None = None,
        service_jitter: float = 0.03,
        failed_retrieval_penalty_s: float = 0.25,
        honor_request_rank: bool = False,
        blocking_load: bool = False,
        max_batch_size: int = 1,
        batch_timeout_s: float = 0.0,
        gpu: GpuSpec | str | None = None,
        provisioning: bool = False,
        queue_policy: str = "fifo",
        tenant_weights: dict[str, float] | None = None,
    ) -> None:
        self.worker_id = int(worker_id)
        self.engine = engine
        self.zoo = zoo
        self.cache = cache
        #: Reference GPU the zoo's level latencies were built for.
        self._reference_gpu: GpuSpec = zoo.latency_model.gpu
        if gpu is None:
            self.gpu = self._reference_gpu
        elif isinstance(gpu, GpuSpec):
            self.gpu = gpu
        else:
            self.gpu = gpu_by_name(gpu)
        #: Service-rate multiplier relative to the zoo's reference GPU
        #: (1.0 on a homogeneous fleet; < 1.0 for slower generations).
        self.speed_factor = self.gpu.relative_speed / self._reference_gpu.relative_speed
        #: Gray-failure state: the healthy speed to restore to, and the
        #: active degradation multiplier (``None`` while healthy).
        self._base_speed_factor = self.speed_factor
        self._degrade_factor: float | None = None
        if memory_capacity_gib is None:
            memory_capacity_gib = self.gpu.memory_gib
        self.memory = GpuMemory(memory_capacity_gib)
        self.latency_model = LatencyModel(self.gpu)
        self.on_complete = on_complete
        self.on_requeue = on_requeue
        self.service_jitter = float(service_jitter)
        self.failed_retrieval_penalty_s = float(failed_retrieval_penalty_s)
        #: When True (NIRVANA-style serving) an AC worker uses the per-request
        #: assigned rank as its K instead of its own operating level.
        self.honor_request_rank = bool(honor_request_rank)
        #: When True, serving pauses while a model load is in progress.
        self.blocking_load = bool(blocking_load)
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be non-negative")
        #: Upper bound on requests served per GPU pass.
        self.max_batch_size = int(max_batch_size)
        #: How long an under-full batch may wait for more arrivals before
        #: being launched anyway.  Zero launches immediately (greedy drain).
        self.batch_timeout_s = float(batch_timeout_s)

        self.state = WorkerState.PROVISIONING if provisioning else WorkerState.IDLE
        self.stats = WorkerStats()
        if queue_policy not in ("fifo", "tenant-priority"):
            raise ValueError(f"unknown queue policy {queue_policy!r}")
        self.queue_policy = queue_policy
        #: FIFO keeps the plain deque (the bit-pinned default); the tenant-
        #: priority discipline swaps in weighted-DRR + per-tenant EDF behind
        #: the same append/popleft/iter surface.
        self._queue: deque[Request] | TenantPriorityQueue = (
            TenantPriorityQueue(tenant_weights)
            if queue_policy == "tenant-priority"
            else deque()
        )
        self._batch: list[Request] = []
        self._forming_event: Event | None = None
        self._serve_event: Event | None = None
        #: Hot-path caches: the jitter stream and event names are fixed per
        #: worker, so resolving them once avoids a registry lookup and an
        #: f-string format on every batch launch.  The stream object is the
        #: registry's own singleton, so draws are bit-identical to looking
        #: it up by name each time.
        self._jitter_rng = engine.rng(f"jitter-w{self.worker_id}")
        self._serve_event_name = f"serve-w{self.worker_id}"
        self._forming_event_name = f"batch-form-w{self.worker_id}"
        self._level = level
        self._pending_level: ApproximationLevel | None = None
        self._load_complete_time: float | None = None
        self.memory.load(level.model_name, level.memory_gib)

        #: When the node started accruing cost (provisioning counts: the
        #: cloud bills from allocation, not from the first served request).
        self.billed_from_s = engine.now
        #: When the worker entered the serving rotation (None while still
        #: provisioning).  0.0 for workers present since the start.
        self.enrolled_at_s: float | None = None if provisioning else engine.now
        #: When the worker left the fleet for good (scale-in), None while alive.
        self.retired_at_s: float | None = None
        #: Closed failure intervals (downtime) while enrolled.
        self._downtime_intervals: list[tuple[float, float]] = []
        self._failed_at_s: float | None = None
        #: Set by the cluster when the provision timer elapsed while this
        #: worker was failed; invoked on recovery to enroll it then.
        self._deferred_enroll: Callable[[], None] | None = None

    # ------------------------------------------------------------------ #
    # Level / strategy management
    # ------------------------------------------------------------------ #
    @property
    def level(self) -> ApproximationLevel:
        """The approximation level this worker currently serves at."""
        return self._level

    @property
    def strategy(self) -> Strategy:
        """The strategy of the current level."""
        return self._level.strategy

    @property
    def is_loading(self) -> bool:
        """Whether a background model load is in progress."""
        return self._pending_level is not None

    def set_level(self, level: ApproximationLevel) -> float:
        """Ask the worker to operate at ``level``.

        Returns the switching delay in seconds: zero when the required model
        is already resident (every AC level shares the SD-XL base, and
        switching K is free), otherwise the Table-2 load latency.  The load
        happens in the background; the worker keeps serving at its old level
        until the load completes.
        """
        if self.state in (WorkerState.FAILED, WorkerState.RETIRED):
            raise RuntimeError(f"worker {self.worker_id} is {self.state.value}")
        target_model = level.model_name
        if self.memory.is_resident(target_model):
            self._level = level
            self._pending_level = None
            return 0.0
        if (
            self._pending_level is not None
            and self._pending_level.model_name == target_model
        ):
            self._pending_level = level
            return max(0.0, (self._load_complete_time or self.engine.now) - self.engine.now)

        load_time = self.load_time_for_level(level)
        self._start_background_load(level, target_model, load_time)
        return load_time

    def load_time_for_level(self, level: ApproximationLevel) -> float:
        """Table-2 time to make ``level``'s model resident on this worker.

        Used both for serving-path switches and for the provisioning warm-up
        of freshly added workers, so the two can never diverge.
        """
        return level.switch_cost_s or self._load_time_for(level.model_name)

    def _load_time_for(self, model_name: str) -> float:
        for variant in SM_VARIANTS:
            if variant.name == model_name:
                return variant.load_time_s
        return SM_VARIANTS[0].load_time_s

    def _start_background_load(
        self, level: ApproximationLevel, model_name: str, load_time: float
    ) -> None:
        # Make room if both slots are occupied: evict everything that is not
        # the active model (the previous background model).
        active = self._level.model_name
        for resident in self.memory.resident_models:
            if resident not in (active, model_name) or (
                not self.memory.can_fit(level.memory_gib) and resident != active
            ):
                self.memory.unload(resident)
        if not self.memory.can_fit(level.memory_gib):
            # Last resort: drop the active model too (switch is no longer
            # hitless, but this only happens with tiny memory configs).
            self.memory.unload(active)
        self.memory.load(model_name, level.memory_gib)
        self._pending_level = level
        self._load_complete_time = self.engine.now + load_time
        self.stats.model_loads += 1
        self.stats.load_time_s += load_time
        self.engine.schedule_in(load_time, self._finish_load, name=f"load-w{self.worker_id}")

    def _finish_load(self, _engine: SimulationEngine) -> None:
        if self._pending_level is None or self.state in (
            WorkerState.FAILED,
            WorkerState.RETIRED,
        ):
            return
        old_model = self._level.model_name
        new_level = self._pending_level
        self._level = new_level
        self._pending_level = None
        self._load_complete_time = None
        new_model = new_level.model_name
        if old_model != new_model:
            self.memory.unload(old_model)
        if self.blocking_load:
            self._start_next()

    # ------------------------------------------------------------------ #
    # Queueing
    # ------------------------------------------------------------------ #
    @property
    def queue_length(self) -> int:
        """Requests waiting (not counting those in service)."""
        return len(self._queue)

    @property
    def in_service(self) -> int:
        """Requests currently being served in the active batch."""
        return len(self._batch)

    @property
    def outstanding(self) -> int:
        """Requests queued plus in service."""
        return len(self._queue) + len(self._batch)

    def _planned_batch_size(self, extra: int = 0) -> int:
        """Batch size the worker would run with its current backlog."""
        return max(1, min(self.max_batch_size, self.outstanding + extra))

    def level_latency_s(self, level: ApproximationLevel | None = None) -> float:
        """Single-request latency of ``level`` on *this worker's* GPU.

        The zoo's level latencies are calibrated for the reference GPU; a
        slower generation stretches them by its Fig. 5 relative speed.  On a
        homogeneous fleet ``speed_factor == 1.0`` and this is exactly the
        level latency.
        """
        level = level or self._level
        return level.latency_s / self.speed_factor

    def peak_qpm(self, level: ApproximationLevel | None = None, batch_size: int = 1) -> float:
        """Sustained QPM this worker delivers at ``level`` (Eq. 1 capacity).

        The per-worker capacity term of the heterogeneity-aware allocator:
        the level's batched peak on the reference GPU scaled by this
        worker's relative speed.
        """
        level = level or self._level
        return self.zoo.batched_peak_qpm(level, max(1, batch_size)) * self.speed_factor

    def effective_request_latency_s(self, extra: int = 0) -> float:
        """Amortised per-request service time at the planned batch size.

        This is the batching-profile-aware, GPU-speed-aware service rate the
        scheduler and allocator reason with; at ``max_batch_size=1`` on the
        reference GPU it reduces to the level's single-request latency.
        """
        batch = self._planned_batch_size(extra)
        if batch == 1:
            return self.level_latency_s()
        return self.zoo.batched_service_time(self._level, batch) / batch / self.speed_factor

    def expected_wait_s(self) -> float:
        """Estimated time a new arrival would wait before completing (Eq. 3,
        batch-aware)."""
        return (self.outstanding + 1) * self.effective_request_latency_s(extra=1)

    def estimated_backlog_s(self) -> float:
        """Work already queued/in service, in seconds of GPU time (Eq. 3)."""
        return self.outstanding * self.effective_request_latency_s()

    def enqueue(self, request: Request) -> None:
        """Admit a request to this worker's queue."""
        if not self.is_active:
            raise RuntimeError(
                f"worker {self.worker_id} cannot accept requests ({self.state.value})"
            )
        self._queue.append(request)
        if not self._batch:
            self._start_next()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def _cancel_forming(self) -> None:
        if self._forming_event is not None:
            self._forming_event.cancel()
            self._forming_event = None

    def _start_next(self) -> None:
        """Launch the next batch, or start/continue a forming window."""
        if self.state is WorkerState.FAILED or self._batch:
            return
        if self.blocking_load and self._pending_level is not None:
            # A naive model swap blocks the serving path until the new model
            # is resident; _finish_load resumes the queue.
            self.state = WorkerState.IDLE
            return
        if not self._queue:
            self.state = WorkerState.IDLE
            return
        if (
            self.max_batch_size > 1
            and self.batch_timeout_s > 0.0
            and len(self._queue) < self.max_batch_size
        ):
            # Under-full batch: hold the queue open for up to the forming
            # window.  Arrivals that fill the batch launch it early.
            if self._forming_event is None:
                self._forming_event = self.engine.schedule_in(
                    self.batch_timeout_s,
                    self._forming_timeout,
                    name=self._forming_event_name,
                )
            self.state = WorkerState.IDLE
            return
        self._cancel_forming()
        self._launch_batch()

    def _forming_timeout(self, _engine: SimulationEngine) -> None:
        self._forming_event = None
        if self.state is WorkerState.FAILED or self._batch or not self._queue:
            return
        if self.blocking_load and self._pending_level is not None:
            return
        self._launch_batch()

    def _launch_batch(self) -> None:
        batch_size = min(len(self._queue), self.max_batch_size)
        batch = [self._queue.popleft() for _ in range(batch_size)]
        self._batch = batch
        self.state = WorkerState.BUSY
        start = self.engine.now
        record_level = self._level
        profiles = [self._service_profile(request) for request in batch]
        # One GPU pass serves the whole batch; its wall-clock cost is the
        # slowest member's GPU-compute time scaled by the level's Fig. 14
        # batching profile (exactly the single-request time at batch 1).
        # Network overheads (cache retrieval, outage penalty) happen once
        # per request in parallel, so only the slowest one is paid — they do
        # not grow with batch size the way compute does.
        if batch_size == 1:
            batch_time = profiles[0].service_time_s
        else:
            compute = max(p.service_time_s - p.overhead_s for p in profiles)
            overhead = max(p.overhead_s for p in profiles)
            batch_time = (
                compute * self.zoo.batch_latency_multiplier(record_level, batch_size)
                + overhead
            )

        def complete(_engine: SimulationEngine) -> None:
            self._serve_event = None
            self._finish_batch(batch, profiles, start, batch_time, record_level)

        self._serve_event = self.engine.schedule_in(
            batch_time, complete, name=self._serve_event_name
        )

    def _service_profile(self, request: Request) -> ServiceProfile:
        """Compute the single-request serving cost for one batch member."""
        level = self._level
        if (
            self.honor_request_rank
            and level.strategy is Strategy.AC
            and 0 <= request.assigned_rank < self.zoo.num_levels(Strategy.AC)
        ):
            level = self.zoo.level(Strategy.AC, request.assigned_rank)
        jitter = 1.0 + float(self._jitter_rng.normal(0.0, self.service_jitter))
        jitter = max(0.8, jitter)
        if level.strategy is Strategy.SM or level.skip_steps in (None, 0) or self.cache is None:
            return ServiceProfile(
                service_time_s=self.level_latency_s(level) * jitter,
                effective_rank=level.rank,
                retrieval_latency_s=0.0,
                cache_hit=False,
                retrieval_failed=False,
            )

        outcome = self.cache.retrieve(request.prompt, level.skip_steps, self.engine.now)
        effective_skip = outcome.effective_skip
        spec = self.zoo.ac_level_spec(effective_skip) if effective_skip else None
        base_variant = self.zoo.sm_variant(level.variant_name or "SD-XL")
        overhead = 0.0
        if spec is None:
            latency = self.latency_model.variant_latency(base_variant)
            effective_rank = 0
        else:
            latency = self.latency_model.ac_latency(spec, base_variant, outcome.retrieval_latency_s)
            effective_rank = spec.approximation_rank
            overhead = outcome.retrieval_latency_s
        if outcome.network_failed:
            latency += self.failed_retrieval_penalty_s
            overhead += self.failed_retrieval_penalty_s
        if outcome.hit:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
        return ServiceProfile(
            service_time_s=latency * jitter,
            effective_rank=effective_rank,
            retrieval_latency_s=outcome.retrieval_latency_s,
            cache_hit=outcome.hit,
            retrieval_failed=outcome.network_failed,
            overhead_s=overhead * jitter,
        )

    def _finish_batch(
        self,
        batch: list[Request],
        profiles: list[ServiceProfile],
        start: float,
        batch_time: float,
        level: ApproximationLevel,
    ) -> None:
        if self.state in (WorkerState.FAILED, WorkerState.RETIRED):
            return
        self._batch = []
        batch_size = len(batch)
        self.stats.requests_served += batch_size
        self.stats.busy_time_s += batch_time
        self.stats.batches_served += 1
        self.stats.max_batch_served = max(self.stats.max_batch_served, batch_size)
        for request, profile in zip(batch, profiles):
            if self.cache is not None and level.strategy is Strategy.AC:
                self.cache.store_states(request.prompt)
            record = CompletedRequest(
                request=request,
                worker_id=self.worker_id,
                start_time_s=start,
                completion_time_s=self.engine.now,
                effective_rank=profile.effective_rank,
                service_time_s=batch_time,
                retrieval_latency_s=profile.retrieval_latency_s,
                cache_hit=profile.cache_hit,
                retrieval_failed=profile.retrieval_failed,
                batch_size=batch_size,
            )
            if self.on_complete is not None:
                self.on_complete(record)
        if self.state is WorkerState.DRAINING:
            self._retire()
            return
        self._start_next()

    # ------------------------------------------------------------------ #
    # Elastic lifecycle (provision / drain / retire)
    # ------------------------------------------------------------------ #
    @property
    def is_active(self) -> bool:
        """Whether the worker is in the serving rotation (may take requests)."""
        return self.state in (WorkerState.IDLE, WorkerState.BUSY)

    @property
    def is_provisioning(self) -> bool:
        """Whether the worker is still being provisioned / warmed up."""
        return self.state is WorkerState.PROVISIONING

    @property
    def is_retired(self) -> bool:
        """Whether the worker has left the fleet permanently."""
        return self.state is WorkerState.RETIRED

    def enter_rotation(self) -> None:
        """Promote a provisioned worker into the serving rotation."""
        if self.state is not WorkerState.PROVISIONING:
            return
        self.state = WorkerState.IDLE
        self.enrolled_at_s = self.engine.now

    def begin_drain(self) -> list[Request]:
        """Leave the rotation gracefully (scale-in).

        Queued requests are handed back for re-routing immediately; the
        in-flight batch (if any) finishes normally, after which the worker
        retires.  Returns the requeued requests.
        """
        if self.state in (WorkerState.RETIRED, WorkerState.FAILED):
            if self.state is WorkerState.FAILED:
                self._retire()
            return []
        orphans = list(self._queue)
        self._queue.clear()
        self._cancel_forming()
        if self.on_requeue is not None:
            for request in orphans:
                self.on_requeue(request)
        if self._batch:
            self.state = WorkerState.DRAINING
        else:
            self._retire()
        return orphans

    def _retire(self) -> None:
        now = self.engine.now
        if self._failed_at_s is not None:
            self._downtime_intervals.append((self._failed_at_s, now))
            self._failed_at_s = None
        self.state = WorkerState.RETIRED
        self.retired_at_s = now
        self._pending_level = None
        self._cancel_forming()
        if self._serve_event is not None:
            self._serve_event.cancel()
            self._serve_event = None

    # ------------------------------------------------------------------ #
    # Failures
    # ------------------------------------------------------------------ #
    @property
    def is_failed(self) -> bool:
        """Whether the worker is currently failed."""
        return self.state is WorkerState.FAILED

    def fail(self) -> list[Request]:
        """Fail the worker, returning requests that need re-dispatching."""
        if self.state in (WorkerState.RETIRED, WorkerState.FAILED):
            # Double-fail must not reset _failed_at_s: that would erase the
            # downtime accumulated since the first failure.
            return []
        draining = self.state is WorkerState.DRAINING
        orphans: list[Request] = []
        orphans.extend(self._batch)
        self._batch = []
        orphans.extend(self._queue)
        self._queue.clear()
        self._cancel_forming()
        # Cancel the in-flight GPU pass: its requests are being re-routed,
        # so letting the stale completion fire after a recovery would
        # double-complete them.
        if self._serve_event is not None:
            self._serve_event.cancel()
            self._serve_event = None
        self.state = WorkerState.FAILED
        if self.enrolled_at_s is not None:
            self._failed_at_s = self.engine.now
        self._pending_level = None
        if self.on_requeue is not None:
            for request in orphans:
                self.on_requeue(request)
        if draining:
            # The worker was on its way out anyway: finish the removal.
            self._retire()
        return orphans

    # ------------------------------------------------------------------ #
    # Gray failures (slow-not-dead)
    # ------------------------------------------------------------------ #
    @property
    def is_degraded(self) -> bool:
        """Whether the worker is gray-failed (serving at reduced speed)."""
        return self._degrade_factor is not None

    def degrade(self, factor: float) -> None:
        """Gray-fail the worker: it stays in rotation but serves at
        ``factor`` of its healthy speed.

        The slowdown applies to batches launched from now on; an in-flight
        GPU pass keeps the service time it was launched with (the gray
        failure hits the machine, not physics already in motion).  Repeated
        calls replace the factor rather than compounding it.
        """
        if not 0.0 < factor < 1.0:
            raise ValueError("degrade factor must be in (0, 1)")
        self._degrade_factor = float(factor)
        self.speed_factor = self._base_speed_factor * self._degrade_factor

    def restore_speed(self) -> None:
        """End a gray failure, returning the worker to full speed."""
        if self._degrade_factor is None:
            return
        self._degrade_factor = None
        self.speed_factor = self._base_speed_factor

    def recover(self, level: ApproximationLevel | None = None) -> None:
        """Bring a failed worker back, optionally at a new level."""
        if self.state is not WorkerState.FAILED:
            return
        if self._failed_at_s is not None:
            self._downtime_intervals.append((self._failed_at_s, self.engine.now))
            self._failed_at_s = None
        self.memory.clear()
        target = level or self._level
        self._level = target
        self.memory.load(target.model_name, target.memory_gib)
        if self.enrolled_at_s is None:
            # The worker failed before ever entering rotation: resume
            # provisioning.  If the provision timer already elapsed while it
            # was down, the cluster left a deferred enrollment to run now.
            self.state = WorkerState.PROVISIONING
            if self._deferred_enroll is not None:
                enroll = self._deferred_enroll
                self._deferred_enroll = None
                enroll()
            return
        self.state = WorkerState.IDLE

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def downtime_s(self) -> float:
        """Total failed time accumulated so far (open failure included)."""
        total = sum(end - start for start, end in self._downtime_intervals)
        if self._failed_at_s is not None:
            total += self.engine.now - self._failed_at_s
        return total

    def enrolled_healthy_s(self, until_s: float) -> float:
        """Time in [0, ``until_s``] spent enrolled and healthy.

        The utilisation denominator: enrollment starts when the worker
        enters the rotation (not at fleet start for late joiners), stops at
        retirement, and excludes failed downtime.  Downtime is kept as
        intervals so the query is correct for any ``until_s``, including
        times before a later recovery.
        """
        if self.enrolled_at_s is None:
            return 0.0
        end = until_s if self.retired_at_s is None else min(until_s, self.retired_at_s)
        span = end - self.enrolled_at_s
        if span <= 0:
            return 0.0
        down = sum(
            max(0.0, min(stop, end) - max(start, self.enrolled_at_s))
            for start, stop in self._downtime_intervals
        )
        if self._failed_at_s is not None and self._failed_at_s < end:
            down += end - self._failed_at_s
        return max(0.0, span - down)

    def billed_s(self, until_s: float) -> float:
        """Billable node time in [0, ``until_s``] (provisioning and downtime
        included: the cloud charges from allocation to release)."""
        end = until_s if self.retired_at_s is None else min(until_s, self.retired_at_s)
        return max(0.0, end - self.billed_from_s)

    def utilization(self, elapsed_s: float) -> float:
        """Fraction of its enrolled-and-healthy time this worker spent serving.

        Normalised by :meth:`enrolled_healthy_s`, not wall time: a worker
        that joined late or sat failed for part of the run is judged only on
        the time it could actually serve.  For an always-healthy worker
        present since the start this is exactly ``busy / elapsed``.
        """
        denominator = self.enrolled_healthy_s(elapsed_s)
        if denominator <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_s / denominator)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Worker(id={self.worker_id}, level={self._level}, state={self.state.value}, "
            f"queue={self.queue_length}, batch={self.in_service}/{self.max_batch_size})"
        )
