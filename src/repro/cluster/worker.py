"""An event-driven GPU worker.

A worker serves one request at a time (batch size 1), operates at a single
approximation level set by the allocator, and pays the model-load latency
when asked to switch to a different SM variant.  The GPU has room for two
resident diffusion models, so loads happen in the background while the old
model keeps serving — the mechanism behind Argus's hitless strategy switch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.cache.approximate import ApproximateCache
from repro.cluster.memory import GpuMemory
from repro.cluster.requests import CompletedRequest, Request
from repro.models.latency import LatencyModel
from repro.models.variants import SM_VARIANTS
from repro.models.zoo import ApproximationLevel, ModelZoo, Strategy
from repro.simulation.engine import SimulationEngine


class WorkerState(str, Enum):
    """Lifecycle state of a worker."""

    IDLE = "idle"
    BUSY = "busy"
    FAILED = "failed"


@dataclass
class WorkerStats:
    """Aggregate counters for one worker."""

    requests_served: int = 0
    busy_time_s: float = 0.0
    model_loads: int = 0
    load_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0


class Worker:
    """A single GPU worker in the serving cluster."""

    def __init__(
        self,
        worker_id: int,
        engine: SimulationEngine,
        zoo: ModelZoo,
        level: ApproximationLevel,
        cache: ApproximateCache | None = None,
        memory_capacity_gib: float = 80.0,
        on_complete: Callable[[CompletedRequest], None] | None = None,
        on_requeue: Callable[[Request], None] | None = None,
        service_jitter: float = 0.03,
        failed_retrieval_penalty_s: float = 0.25,
        honor_request_rank: bool = False,
        blocking_load: bool = False,
    ) -> None:
        self.worker_id = int(worker_id)
        self.engine = engine
        self.zoo = zoo
        self.cache = cache
        self.memory = GpuMemory(memory_capacity_gib)
        self.latency_model = LatencyModel(zoo.gpu)
        self.on_complete = on_complete
        self.on_requeue = on_requeue
        self.service_jitter = float(service_jitter)
        self.failed_retrieval_penalty_s = float(failed_retrieval_penalty_s)
        #: When True (NIRVANA-style serving) an AC worker uses the per-request
        #: assigned rank as its K instead of its own operating level.
        self.honor_request_rank = bool(honor_request_rank)
        #: When True, serving pauses while a model load is in progress.
        self.blocking_load = bool(blocking_load)

        self.state = WorkerState.IDLE
        self.stats = WorkerStats()
        self._queue: deque[Request] = deque()
        self._current: Request | None = None
        self._level = level
        self._pending_level: ApproximationLevel | None = None
        self._load_complete_time: float | None = None
        self.memory.load(self._resident_model_name(level), level.memory_gib)

    # ------------------------------------------------------------------ #
    # Level / strategy management
    # ------------------------------------------------------------------ #
    @property
    def level(self) -> ApproximationLevel:
        """The approximation level this worker currently serves at."""
        return self._level

    @property
    def strategy(self) -> Strategy:
        """The strategy of the current level."""
        return self._level.strategy

    @property
    def is_loading(self) -> bool:
        """Whether a background model load is in progress."""
        return self._pending_level is not None

    @staticmethod
    def _resident_model_name(level: ApproximationLevel) -> str:
        return level.variant_name or level.name

    def set_level(self, level: ApproximationLevel) -> float:
        """Ask the worker to operate at ``level``.

        Returns the switching delay in seconds: zero when the required model
        is already resident (every AC level shares the SD-XL base, and
        switching K is free), otherwise the Table-2 load latency.  The load
        happens in the background; the worker keeps serving at its old level
        until the load completes.
        """
        if self.state is WorkerState.FAILED:
            raise RuntimeError(f"worker {self.worker_id} is failed")
        target_model = self._resident_model_name(level)
        if self.memory.is_resident(target_model):
            self._level = level
            self._pending_level = None
            return 0.0
        if self._pending_level is not None and self._resident_model_name(
            self._pending_level
        ) == target_model:
            self._pending_level = level
            return max(0.0, (self._load_complete_time or self.engine.now) - self.engine.now)

        load_time = level.switch_cost_s or self._load_time_for(target_model)
        self._start_background_load(level, target_model, load_time)
        return load_time

    def _load_time_for(self, model_name: str) -> float:
        for variant in SM_VARIANTS:
            if variant.name == model_name:
                return variant.load_time_s
        return SM_VARIANTS[0].load_time_s

    def _start_background_load(
        self, level: ApproximationLevel, model_name: str, load_time: float
    ) -> None:
        # Make room if both slots are occupied: evict everything that is not
        # the active model (the previous background model).
        active = self._resident_model_name(self._level)
        for resident in self.memory.resident_models:
            if resident not in (active, model_name) or (
                not self.memory.can_fit(level.memory_gib) and resident != active
            ):
                self.memory.unload(resident)
        if not self.memory.can_fit(level.memory_gib):
            # Last resort: drop the active model too (switch is no longer
            # hitless, but this only happens with tiny memory configs).
            self.memory.unload(active)
        self.memory.load(model_name, level.memory_gib)
        self._pending_level = level
        self._load_complete_time = self.engine.now + load_time
        self.stats.model_loads += 1
        self.stats.load_time_s += load_time
        self.engine.schedule_in(load_time, self._finish_load, name=f"load-w{self.worker_id}")

    def _finish_load(self, _engine: SimulationEngine) -> None:
        if self._pending_level is None or self.state is WorkerState.FAILED:
            return
        old_model = self._resident_model_name(self._level)
        new_level = self._pending_level
        self._level = new_level
        self._pending_level = None
        self._load_complete_time = None
        new_model = self._resident_model_name(new_level)
        if old_model != new_model:
            self.memory.unload(old_model)
        if self.blocking_load:
            self._start_next()

    # ------------------------------------------------------------------ #
    # Queueing
    # ------------------------------------------------------------------ #
    @property
    def queue_length(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def outstanding(self) -> int:
        """Requests queued plus in service."""
        return len(self._queue) + (1 if self._current is not None else 0)

    def expected_wait_s(self) -> float:
        """Estimated time a new arrival would wait before completing (Eq. 3)."""
        return (self.outstanding + 1) * self._level.latency_s

    def enqueue(self, request: Request) -> None:
        """Admit a request to this worker's queue."""
        if self.state is WorkerState.FAILED:
            raise RuntimeError(f"worker {self.worker_id} is failed")
        self._queue.append(request)
        if self.state is WorkerState.IDLE:
            self._start_next()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def _start_next(self) -> None:
        if self.state is WorkerState.FAILED or self._current is not None:
            return
        if self.blocking_load and self._pending_level is not None:
            # A naive model swap blocks the serving path until the new model
            # is resident; _finish_load resumes the queue.
            self.state = WorkerState.IDLE
            return
        if not self._queue:
            self.state = WorkerState.IDLE
            return
        request = self._queue.popleft()
        self._current = request
        self.state = WorkerState.BUSY
        start = self.engine.now
        profile = self._service_profile(request)
        service_time, effective_rank, retrieval_latency, cache_hit, retrieval_failed = profile
        record_level = self._level

        def complete(_engine: SimulationEngine) -> None:
            self._finish_request(
                request, start, service_time, effective_rank, retrieval_latency, cache_hit,
                retrieval_failed, record_level,
            )

        self.engine.schedule_in(service_time, complete, name=f"serve-w{self.worker_id}")

    def _service_profile(self, request: Request) -> tuple[float, int, float, bool, bool]:
        """Compute (service time, effective rank, retrieval latency, hit, failed)."""
        level = self._level
        if (
            self.honor_request_rank
            and level.strategy is Strategy.AC
            and 0 <= request.assigned_rank < self.zoo.num_levels(Strategy.AC)
        ):
            level = self.zoo.level(Strategy.AC, request.assigned_rank)
        jitter = 1.0 + float(
            self.engine.rng(f"jitter-w{self.worker_id}").normal(0.0, self.service_jitter)
        )
        jitter = max(0.8, jitter)
        if level.strategy is Strategy.SM or level.skip_steps in (None, 0) or self.cache is None:
            return level.latency_s * jitter, level.rank, 0.0, False, False

        outcome = self.cache.retrieve(request.prompt, level.skip_steps, self.engine.now)
        effective_skip = outcome.effective_skip
        spec = self.zoo.ac_level_spec(effective_skip) if effective_skip else None
        base_variant = self.zoo.sm_variant(level.variant_name or "SD-XL")
        if spec is None:
            latency = self.latency_model.variant_latency(base_variant)
            effective_rank = 0
        else:
            latency = self.latency_model.ac_latency(spec, base_variant, outcome.retrieval_latency_s)
            effective_rank = spec.approximation_rank
        if outcome.network_failed:
            latency += self.failed_retrieval_penalty_s
        if outcome.hit:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
        return (
            latency * jitter,
            effective_rank,
            outcome.retrieval_latency_s,
            outcome.hit,
            outcome.network_failed,
        )

    def _finish_request(
        self,
        request: Request,
        start: float,
        service_time: float,
        effective_rank: int,
        retrieval_latency: float,
        cache_hit: bool,
        retrieval_failed: bool,
        level: ApproximationLevel,
    ) -> None:
        if self.state is WorkerState.FAILED:
            return
        self._current = None
        self.stats.requests_served += 1
        self.stats.busy_time_s += service_time
        if self.cache is not None and level.strategy is Strategy.AC:
            self.cache.store_states(request.prompt)
        record = CompletedRequest(
            request=request,
            worker_id=self.worker_id,
            start_time_s=start,
            completion_time_s=self.engine.now,
            effective_rank=effective_rank,
            service_time_s=service_time,
            retrieval_latency_s=retrieval_latency,
            cache_hit=cache_hit,
            retrieval_failed=retrieval_failed,
        )
        if self.on_complete is not None:
            self.on_complete(record)
        self._start_next()

    # ------------------------------------------------------------------ #
    # Failures
    # ------------------------------------------------------------------ #
    @property
    def is_failed(self) -> bool:
        """Whether the worker is currently failed."""
        return self.state is WorkerState.FAILED

    def fail(self) -> list[Request]:
        """Fail the worker, returning requests that need re-dispatching."""
        orphans: list[Request] = []
        if self._current is not None:
            orphans.append(self._current)
            self._current = None
        orphans.extend(self._queue)
        self._queue.clear()
        self.state = WorkerState.FAILED
        self._pending_level = None
        if self.on_requeue is not None:
            for request in orphans:
                self.on_requeue(request)
        return orphans

    def recover(self, level: ApproximationLevel | None = None) -> None:
        """Bring a failed worker back, optionally at a new level."""
        if self.state is not WorkerState.FAILED:
            return
        self.state = WorkerState.IDLE
        self.memory.clear()
        target = level or self._level
        self._level = target
        self.memory.load(self._resident_model_name(target), target.memory_gib)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def utilization(self, elapsed_s: float) -> float:
        """Fraction of ``elapsed_s`` this worker spent serving."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time_s / elapsed_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Worker(id={self.worker_id}, level={self._level}, state={self.state.value}, "
            f"queue={self.queue_length})"
        )
