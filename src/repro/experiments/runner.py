"""End-to-end experiment runner.

Runs any serving system (Argus or a baseline) against a workload trace and
collects the metrics the paper reports: served throughput per minute, SLO
violation ratio, effective accuracy / relative quality, cluster utilisation
and model-load counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.clipper import ClipperSystem
from repro.baselines.nirvana import NirvanaSystem
from repro.baselines.pac import PacSystem
from repro.baselines.proteus import ProteusSystem
from repro.baselines.sommelier import SommelierSystem
from repro.core.base import BaseServingSystem
from repro.core.config import ArgusConfig
from repro.core.system import ArgusSystem
from repro.metrics.collector import MinuteStats
from repro.metrics.report import RunSummary
from repro.prompts.dataset import PromptDataset
from repro.workloads.replay import RequestStream
from repro.workloads.traces import WorkloadTrace

#: Registry of system factories by canonical name.
SYSTEM_NAMES = (
    "argus",
    "pac",
    "proteus",
    "sommelier",
    "nirvana",
    "clipper-ha",
    "clipper-ht",
)


def build_system(
    name: str,
    config: ArgusConfig | None = None,
    training_dataset: PromptDataset | None = None,
    **kwargs,
) -> BaseServingSystem:
    """Build a serving system by name.

    Names: ``argus``, ``pac``, ``proteus``, ``sommelier``, ``nirvana``,
    ``clipper-ha``, ``clipper-ht``.
    """
    key = name.lower()
    if key == "argus":
        return ArgusSystem(config=config, training_dataset=training_dataset, **kwargs)
    if key == "pac":
        return PacSystem(config=config, training_dataset=training_dataset, **kwargs)
    if key == "proteus":
        return ProteusSystem(config=config, training_dataset=training_dataset, **kwargs)
    if key == "sommelier":
        return SommelierSystem(config=config, **kwargs)
    if key == "nirvana":
        return NirvanaSystem(config=config, training_dataset=training_dataset, **kwargs)
    if key == "clipper-ha":
        return ClipperSystem(mode="HA", config=config, **kwargs)
    if key == "clipper-ht":
        return ClipperSystem(mode="HT", config=config, **kwargs)
    raise KeyError(f"unknown system {name!r}; known: {SYSTEM_NAMES}")


@dataclass
class ExperimentResult:
    """Outcome of running one system against one workload."""

    system: str
    workload: str
    summary: RunSummary
    minute_series: list[MinuteStats]
    extras: dict = field(default_factory=dict)

    @property
    def served_qpm_series(self) -> list[float]:
        """Served throughput per minute (one of the Fig. 16 curves)."""
        return [m.served_qpm for m in self.minute_series]

    @property
    def offered_qpm_series(self) -> list[float]:
        """Offered load per minute."""
        return [m.offered_qpm for m in self.minute_series]

    @property
    def violation_ratio_series(self) -> list[float]:
        """SLO violation ratio per minute."""
        return [m.violation_ratio for m in self.minute_series]

    @property
    def relative_quality_series(self) -> list[float]:
        """Mean relative quality per minute."""
        return [m.mean_relative_quality for m in self.minute_series]

    @property
    def fleet_size_series(self) -> list[float]:
        """Time-weighted mean workers in rotation per minute."""
        return [m.fleet_workers for m in self.minute_series]


class ExperimentRunner:
    """Runs serving systems against workload traces."""

    def __init__(self, seed: int = 0, dataset_size: int = 3000, drain_s: float = 120.0) -> None:
        self.seed = int(seed)
        self.dataset_size = int(dataset_size)
        self.drain_s = float(drain_s)

    def make_dataset(self, complexity_bias: float = 0.0) -> PromptDataset:
        """Build the evaluation prompt dataset (DiffusionDB stand-in)."""
        return PromptDataset.synthetic(
            count=self.dataset_size, seed=self.seed + 1, complexity_bias=complexity_bias
        )

    def run_scenario(self, scenario, preset: str = "full", system: str | None = None):
        """Run a declarative :class:`~repro.scenarios.spec.Scenario`.

        ``scenario`` is a Scenario instance or registered name.  The
        runner's ``seed`` is used for the whole run (dataset, arrivals and
        every system component); ``dataset_size`` and ``drain_s`` follow the
        preset, not this runner.  Returns a
        :class:`~repro.scenarios.runtime.ScenarioRun`.
        """
        # Local import: the scenario runtime drives this module, not vice versa.
        from repro.scenarios.runtime import run_scenario

        return run_scenario(scenario, preset=preset, seed=self.seed, system=system)

    def run(
        self,
        system: BaseServingSystem,
        trace: WorkloadTrace,
        dataset: PromptDataset | None = None,
        arrival_kind: str = "poisson",
        stream: RequestStream | None = None,
    ) -> ExperimentResult:
        """Run ``system`` against ``trace`` and collect its metrics.

        A prebuilt ``stream`` (e.g. a drifting
        :class:`~repro.workloads.replay.PhasedRequestStream`) overrides the
        default dataset-cycling stream; it must be built over ``trace``.
        """
        if stream is None:
            dataset = dataset or self.make_dataset()
            stream = RequestStream(
                trace=trace, dataset=dataset, seed=self.seed + 2, arrival_kind=arrival_kind
            )
        elif stream.trace is not trace:
            raise ValueError("prebuilt stream must be built over the trace being run")
        system.schedule_arrivals(stream)
        system.run(duration_s=stream.duration_s, drain_s=self.drain_s)

        # Ask the stream, not the trace: a multi-tenant stream's offered
        # load includes per-tenant extra_qpm series on top of the base
        # trace (for plain streams this is the trace series verbatim).
        offered = {
            minute: stream.offered_qpm(minute) for minute in range(trace.duration_minutes)
        }
        fleet_minutes = system.cluster.fleet_minute_series(trace.duration_minutes)
        minute_series = system.collector.minute_series(
            offered=offered, fleet={m.minute: m for m in fleet_minutes}
        )
        summary = system.summary(workload=trace.name, duration_minutes=trace.duration_minutes)
        extras = {
            "cache_hit_rate": system.cache.hit_rate if system.cache is not None else None,
            # Count what was actually offered instead of len(stream), which
            # would force the lazy stream to materialise.
            "total_requests": system.collector.total_arrivals,
            "fleet_minutes": fleet_minutes,
        }
        return ExperimentResult(
            system=system.name,
            workload=trace.name,
            summary=summary,
            minute_series=minute_series,
            extras=extras,
        )


def compare_systems(
    system_names: list[str],
    trace: WorkloadTrace,
    config_factory=None,
    seed: int = 0,
    dataset_size: int = 3000,
    training_dataset: PromptDataset | None = None,
) -> dict[str, ExperimentResult]:
    """Run several systems against the same trace (fresh config per system).

    Args:
        system_names: names understood by :func:`build_system`.
        trace: the workload to replay.
        config_factory: zero-argument callable returning a fresh
            :class:`ArgusConfig` (systems mutate their config, so each one
            needs its own instance).  Defaults to ``ArgusConfig``.
        seed: base seed for dataset and arrival generation.
        dataset_size: number of prompts in the evaluation dataset.
        training_dataset: optional shared classifier-training dataset.
    """
    config_factory = config_factory or ArgusConfig
    runner = ExperimentRunner(seed=seed, dataset_size=dataset_size)
    dataset = runner.make_dataset()
    results: dict[str, ExperimentResult] = {}
    for name in system_names:
        system = build_system(name, config=config_factory(), training_dataset=training_dataset)
        results[name] = runner.run(system, trace, dataset=dataset)
    return results
