"""Experiment harness: end-to-end runs used by the benchmarks and examples."""

from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    build_system,
    compare_systems,
)

__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "build_system",
    "compare_systems",
]
