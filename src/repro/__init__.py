"""repro: a reproduction of Argus, the quality-aware high-throughput
text-to-image inference serving system (Middleware 2025).

Quickstart (the :mod:`repro.api` facade)::

    import repro

    run = repro.run("steady-baseline", preset="small")   # simulation
    print(run.summary.as_row())

    result = repro.replay("steady-baseline", preset="small", time_scale=60)
    print(result.report["summary"]["total_completions"])  # live gateway

Deep imports (``from repro.core.system import ArgusSystem``) remain public
and stable.  See DESIGN.md for the full system inventory and EXPERIMENTS.md
for the paper-figure reproduction index.
"""

from repro.api import load_scenario, replay, run, serve
from repro.core.autoscaler import Autoscaler, ScalingEvent
from repro.core.config import ArgusConfig
from repro.core.oda import OptimizedDistributionAligner, ShiftMap
from repro.core.solver import AllocationPlan, AllocationSolver
from repro.core.system import ArgusSystem
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    build_system,
    compare_systems,
)
from repro.gateway.loadgen import LoadgenResult
from repro.gateway.server import Gateway
from repro.models.zoo import ApproximationLevel, ModelZoo, Strategy
from repro.metrics.report import RunSummary, ScenarioReport
from repro.prompts.dataset import PromptDataset
from repro.quality.optimal import OptimalModelSelector
from repro.quality.pickscore import PickScoreModel
from repro.scenarios import (
    Scenario,
    ScenarioRun,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario_names,
)
from repro.workloads.shapes import build_shape
from repro.workloads.traces import TraceLibrary, WorkloadTrace

__version__ = "1.0.0"

__all__ = [
    "AllocationPlan",
    "AllocationSolver",
    "ApproximationLevel",
    "ArgusConfig",
    "ArgusSystem",
    "Autoscaler",
    "ExperimentResult",
    "ExperimentRunner",
    "Gateway",
    "LoadgenResult",
    "ModelZoo",
    "OptimalModelSelector",
    "OptimizedDistributionAligner",
    "PickScoreModel",
    "PromptDataset",
    "RunSummary",
    "ScalingEvent",
    "Scenario",
    "ScenarioReport",
    "ScenarioRun",
    "ShiftMap",
    "Strategy",
    "TraceLibrary",
    "WorkloadTrace",
    "build_shape",
    "build_system",
    "compare_systems",
    "get_scenario",
    "list_scenarios",
    "load_scenario",
    "replay",
    "run",
    "run_scenario",
    "scenario_names",
    "serve",
    "__version__",
]
