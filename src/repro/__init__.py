"""repro: a reproduction of Argus, the quality-aware high-throughput
text-to-image inference serving system (Middleware 2025).

Quickstart::

    from repro import ArgusConfig, ArgusSystem, ExperimentRunner, TraceLibrary

    config = ArgusConfig(num_workers=8)
    system = ArgusSystem(config=config)
    trace = TraceLibrary(seed=0).twitter_like(duration_minutes=60)
    result = ExperimentRunner(seed=0).run(system, trace)
    print(result.summary.as_row())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-figure reproduction index.
"""

from repro.core.autoscaler import Autoscaler, ScalingEvent
from repro.core.config import ArgusConfig
from repro.core.oda import OptimizedDistributionAligner, ShiftMap
from repro.core.solver import AllocationPlan, AllocationSolver
from repro.core.system import ArgusSystem
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    build_system,
    compare_systems,
)
from repro.models.zoo import ApproximationLevel, ModelZoo, Strategy
from repro.metrics.report import RunSummary, ScenarioReport
from repro.prompts.dataset import PromptDataset
from repro.quality.optimal import OptimalModelSelector
from repro.quality.pickscore import PickScoreModel
from repro.scenarios import (
    Scenario,
    ScenarioRun,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario_names,
)
from repro.workloads.shapes import build_shape
from repro.workloads.traces import TraceLibrary, WorkloadTrace

__version__ = "1.0.0"

__all__ = [
    "AllocationPlan",
    "AllocationSolver",
    "ApproximationLevel",
    "ArgusConfig",
    "ArgusSystem",
    "Autoscaler",
    "ExperimentResult",
    "ExperimentRunner",
    "ModelZoo",
    "OptimalModelSelector",
    "OptimizedDistributionAligner",
    "PickScoreModel",
    "PromptDataset",
    "RunSummary",
    "ScalingEvent",
    "Scenario",
    "ScenarioReport",
    "ScenarioRun",
    "ShiftMap",
    "Strategy",
    "TraceLibrary",
    "WorkloadTrace",
    "build_shape",
    "build_system",
    "compare_systems",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
    "scenario_names",
    "__version__",
]
