"""Multi-tenant workloads: tenant contracts and multiplexed request streams.

A :class:`TenantSpec` is the contract one tenant has with the deployment:
how much of the shared traffic it generates (a share of the base trace, an
additive per-minute series of its own, or both), its fair-share weight, its
latency SLO class, the quality level it is contractually entitled to, and
its cache quota.  :class:`MultiTenantRequestStream` multiplexes one lazy
arrival stream per tenant into a single time-ordered stream with tenant-
tagged prompts; the interleave is fully deterministic (per-tenant seeds
derived from the stream seed, ties broken by tenant order).

The identity configuration — a single :meth:`TenantSpec.default` tenant with
full traffic share, standard SLO class and no floor or quota — produces a
stream bit-identical to the plain :class:`~repro.workloads.replay.
RequestStream`, which is how the determinism tests pin that tenancy is a
pure extension of the single-tenant system.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, replace

from repro.metrics.slo import SLO_CLASSES, SloPolicy
from repro.prompts.dataset import PromptDataset
from repro.prompts.generator import Prompt
from repro.workloads.arrival import ArrivalProcess
from repro.workloads.replay import RequestStream, TimedPrompt
from repro.workloads.traces import WorkloadTrace

#: Seed stride between per-tenant arrival processes (prime, so tenant seeds
#: never collide with the +1/+2 offsets the runner uses for datasets).
_TENANT_SEED_STRIDE = 7919


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's serving contract.

    Traffic: ``traffic_share`` is this tenant's fraction of the base trace
    (``None`` splits whatever share is left equally among the unshared
    tenants); ``extra_qpm`` adds the tenant's own per-minute arrival shape on
    top.  Fairness: ``weight`` is the tenant's weighted-fair-share weight for
    admission (token rate and deficit-round-robin quantum) and for the
    tenant-weighted affinity histogram the allocator plans against.
    SLO: ``slo_class`` picks a :data:`~repro.metrics.slo.SLO_CLASSES` budget
    ("standard" inherits the deployment policy); ``slo_multiplier`` overrides
    it outright.  Quality: ``quality_floor_rank`` is the most approximate
    level (highest rank) the tenant may be served at — its PASM rows are
    clamped there; ``quality_floor`` is the contracted relative-quality floor
    reported against in the per-tenant summary.  ``cache_quota`` bounds the
    tenant's entries in its private cache namespace; None keeps the store's
    default capacity (50k entries — the anonymous tenant "" always uses the
    shared default namespace).
    """

    name: str
    weight: float = 1.0
    traffic_share: float | None = None
    extra_qpm: tuple[float, ...] = ()
    slo_class: str = "standard"
    slo_multiplier: float | None = None
    quality_floor_rank: int | None = None
    quality_floor: float = 0.0
    cache_quota: int | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        if self.traffic_share is not None and not 0.0 < self.traffic_share <= 1.0:
            raise ValueError(f"tenant {self.name!r}: traffic_share must be in (0, 1]")
        if self.slo_class not in SLO_CLASSES:
            raise ValueError(
                f"tenant {self.name!r}: unknown SLO class {self.slo_class!r}; "
                f"known: {sorted(SLO_CLASSES)}"
            )
        if self.slo_multiplier is not None and self.slo_multiplier <= 0:
            raise ValueError(f"tenant {self.name!r}: slo_multiplier must be positive")
        if self.quality_floor_rank is not None and self.quality_floor_rank < 0:
            raise ValueError(f"tenant {self.name!r}: quality_floor_rank must be >= 0")
        if not 0.0 <= self.quality_floor <= 1.0:
            raise ValueError(f"tenant {self.name!r}: quality_floor must be in [0, 1]")
        if self.cache_quota is not None and self.cache_quota <= 0:
            raise ValueError(f"tenant {self.name!r}: cache_quota must be positive")
        object.__setattr__(self, "extra_qpm", tuple(float(q) for q in self.extra_qpm))
        if any(q < 0 for q in self.extra_qpm):
            raise ValueError(f"tenant {self.name!r}: extra_qpm values must be non-negative")

    @classmethod
    def default(cls) -> "TenantSpec":
        """The identity tenant: the whole anonymous workload as one tenant.

        Running with exactly this tenant configured is bit-identical to
        running with no tenants at all (pinned by the determinism tests).
        """
        return cls(name="", traffic_share=1.0)

    def slo_policy(self, base: SloPolicy) -> SloPolicy:
        """This tenant's latency SLO, resolved against the deployment policy.

        Resolution order: an explicit ``slo_multiplier`` wins; otherwise a
        non-standard ``slo_class`` uses its class multiplier; the
        ``standard`` class inherits ``base`` unchanged.
        """
        if self.slo_multiplier is not None:
            return replace(base, multiplier=float(self.slo_multiplier))
        if self.slo_class != "standard":
            return replace(base, multiplier=SLO_CLASSES[self.slo_class])
        return base


def validate_tenants(tenants: tuple[TenantSpec, ...]) -> tuple[TenantSpec, ...]:
    """Validate a tenant set as a whole (names unique, shares feasible)."""
    tenants = tuple(tenants)
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique; got {names}")
    if any(t.name == "" for t in tenants) and len(tenants) > 1:
        raise ValueError('the anonymous tenant "" is only valid as the sole tenant')
    explicit = sum(t.traffic_share for t in tenants if t.traffic_share is not None)
    if explicit > 1.0 + 1e-9:
        raise ValueError(f"explicit traffic shares sum to {explicit:g} > 1")
    return tenants


def resolve_shares(tenants: tuple[TenantSpec, ...]) -> dict[str, float]:
    """Each tenant's share of the base trace.

    Tenants without an explicit ``traffic_share`` split the remaining share
    equally; a tenant may also ride on ``extra_qpm`` alone, in which case the
    equal split can legitimately resolve to 0 for it (no unshared tenants
    left but no share remaining).
    """
    tenants = validate_tenants(tenants)
    explicit = sum(t.traffic_share for t in tenants if t.traffic_share is not None)
    unshared = [t for t in tenants if t.traffic_share is None]
    leftover = max(0.0, 1.0 - explicit)
    equal = leftover / len(unshared) if unshared else 0.0
    return {
        t.name: float(t.traffic_share) if t.traffic_share is not None else equal
        for t in tenants
    }


def tenant_trace(base: WorkloadTrace, spec: TenantSpec, share: float) -> WorkloadTrace:
    """The per-minute trace one tenant offers: its base share plus extras.

    A full-share tenant with no extras gets the base trace object itself, so
    the single-default-tenant stream is exactly the plain stream.
    """
    if share >= 1.0 and not spec.extra_qpm:
        return base
    minutes = max(len(base.qpm), len(spec.extra_qpm))
    qpm = []
    for minute in range(minutes):
        value = share * base.qpm[minute] if minute < len(base.qpm) else 0.0
        if minute < len(spec.extra_qpm):
            value += spec.extra_qpm[minute]
        qpm.append(value)
    name = f"{base.name}:{spec.name or 'default'}"
    return WorkloadTrace(name=name, qpm=tuple(qpm))


class MultiTenantRequestStream(RequestStream):
    """Deterministic multiplex of one request stream per tenant.

    Each tenant gets its own arrival process (seed = stream seed + a
    tenant-index stride), its own trace (base share + extras) and its own
    prompt dataset cycled with a private cursor; prompts are tagged with the
    tenant name.  The merged stream is ordered by (arrival time, tenant
    index, per-tenant sequence), so identical seeds always produce an
    identical interleave.

    ``phases`` optionally gives a tenant a drifting prompt mix: a sequence
    of ``(start_s, dataset)`` pairs (first at 0.0, strictly increasing
    starts) replaces that tenant's single dataset, with per-phase cursors
    exactly like :class:`~repro.workloads.replay.PhasedRequestStream`.
    Arrival timestamps are untouched — drift perturbs only the prompt mix.
    """

    def __init__(
        self,
        trace: WorkloadTrace,
        tenants: tuple[TenantSpec, ...],
        datasets: dict[str, PromptDataset],
        seed: int = 0,
        arrival_kind: str = "poisson",
        phases: dict[str, Sequence[tuple[float, PromptDataset]]] | None = None,
    ) -> None:
        tenants = validate_tenants(tuple(tenants))
        if not tenants:
            raise ValueError("need at least one tenant")
        for spec in tenants:
            if spec.name not in datasets:
                raise ValueError(f"no dataset for tenant {spec.name!r}")
            if len(datasets[spec.name]) == 0:
                raise ValueError(f"dataset for tenant {spec.name!r} must not be empty")
        super().__init__(
            trace=trace, dataset=datasets[tenants[0].name], seed=seed, arrival_kind=arrival_kind
        )
        self.tenants = tenants
        self.datasets = dict(datasets)
        shares = resolve_shares(tenants)
        self.tenant_traces: dict[str, WorkloadTrace] = {
            spec.name: tenant_trace(trace, spec, shares[spec.name]) for spec in tenants
        }
        # Tenant extras may not outlive the base trace: run duration, the
        # offered/fleet minute series and the summary all normalise by the
        # base trace length, so a longer tenant tail would serve requests
        # that no report accounts for.
        for spec in tenants:
            if len(spec.extra_qpm) > trace.duration_minutes:
                raise ValueError(
                    f"tenant {spec.name!r}: extra_qpm spans {len(spec.extra_qpm)} minutes, "
                    f"longer than the {trace.duration_minutes}-minute base trace"
                )
        # Per-tenant prompts are tagged once here, not per arrival: the
        # Prompt content-hash memo is per-object, so reusing tagged objects
        # across dataset cycles keeps embedding lookups memoised.
        def tag(name: str, dataset: PromptDataset) -> list[Prompt]:
            return [
                prompt if prompt.tenant == name else replace(prompt, tenant=name)
                for prompt in dataset.prompts
            ]

        self._tagged_prompts: dict[str, list[Prompt]] = {
            spec.name: tag(spec.name, datasets[spec.name]) for spec in tenants
        }
        #: Tenants with a drifting mix: name -> [(start_s, tagged prompts)].
        self._tagged_phases: dict[str, list[tuple[float, list[Prompt]]]] = {}
        for name, tenant_phases in (phases or {}).items():
            if name not in self.datasets:
                raise ValueError(f"phases given for unknown tenant {name!r}")
            starts = [float(start) for start, _ in tenant_phases]
            if not starts or starts[0] != 0.0:
                raise ValueError(f"tenant {name!r}: first phase must start at 0.0")
            if starts != sorted(starts) or len(set(starts)) != len(starts):
                raise ValueError(
                    f"tenant {name!r}: phase start times must be strictly increasing"
                )
            for _, dataset in tenant_phases:
                if len(dataset) == 0:
                    raise ValueError(f"tenant {name!r}: phase datasets must not be empty")
            self._tagged_phases[name] = [
                (float(start), tag(name, dataset)) for start, dataset in tenant_phases
            ]

    def _tenant_seed(self, index: int) -> int:
        """Arrival seed for tenant ``index`` (tenant 0 keeps the stream seed,
        so the single-tenant stream reproduces the plain one exactly)."""
        return self.seed + _TENANT_SEED_STRIDE * index

    def _iter_tenant(self, index: int) -> Iterator[tuple[float, int, int, Prompt]]:
        spec = self.tenants[index]
        process = ArrivalProcess(seed=self._tenant_seed(index))
        trace = self.tenant_traces[spec.name]
        arrivals = process.iter_arrivals(trace, self.arrival_kind)
        phases = self._tagged_phases.get(spec.name)
        if phases is None:
            prompts = self._tagged_prompts[spec.name]
            dataset_size = len(prompts)
            for sequence, arrival in enumerate(arrivals):
                yield (float(arrival), index, sequence, prompts[sequence % dataset_size])
            return
        cursors = [0] * len(phases)
        active = 0
        for sequence, arrival in enumerate(arrivals):
            while active + 1 < len(phases) and arrival >= phases[active + 1][0]:
                active += 1
            prompts = phases[active][1]
            yield (float(arrival), index, sequence, prompts[cursors[active] % len(prompts)])
            cursors[active] += 1

    def _iter_lazy(self) -> Iterator[TimedPrompt]:
        streams = [self._iter_tenant(index) for index in range(len(self.tenants))]
        for arrival, _index, _sequence, prompt in heapq.merge(*streams):
            yield TimedPrompt(arrival_time_s=arrival, prompt=prompt)

    def offered_qpm(self, minute: int) -> float:
        """Combined offered load across tenants during ``minute``."""
        return float(sum(t.qpm_at(minute) for t in self.tenant_traces.values()))


@dataclass(frozen=True)
class TenantRuntime:
    """A tenant's resolved runtime parameters (what the scheduler needs)."""

    spec: TenantSpec
    #: Latency budget in seconds under the tenant's resolved SLO policy.
    budget_s: float

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def weight(self) -> float:
        return self.spec.weight

    @property
    def max_rank(self) -> int | None:
        return self.spec.quality_floor_rank


def build_runtimes(
    tenants: tuple[TenantSpec, ...], base_slo: SloPolicy
) -> dict[str, TenantRuntime]:
    """Resolve the per-tenant runtime table from specs and the global SLO."""
    return {
        spec.name: TenantRuntime(spec=spec, budget_s=spec.slo_policy(base_slo).budget_s)
        for spec in tuple(tenants)
    }
