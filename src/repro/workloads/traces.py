"""Per-minute QPM traces shaped like the paper's evaluation workloads."""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WorkloadTrace:
    """A queries-per-minute time series."""

    name: str
    #: qpm[i] is the offered load during minute i.
    qpm: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.qpm:
            raise ValueError("trace must contain at least one minute")
        if any(q < 0 for q in self.qpm):
            raise ValueError("QPM values must be non-negative")

    @property
    def duration_minutes(self) -> int:
        """Length of the trace in minutes."""
        return len(self.qpm)

    @property
    def peak_qpm(self) -> float:
        """Maximum offered load."""
        return max(self.qpm)

    @property
    def mean_qpm(self) -> float:
        """Average offered load."""
        return float(np.mean(self.qpm))

    @property
    def total_queries(self) -> float:
        """Expected number of queries over the whole trace."""
        return float(np.sum(self.qpm))

    def qpm_at(self, minute: float) -> float:
        """Offered load at a (possibly fractional) minute index."""
        # Scalar clamp: np.clip on a Python int pays ufunc dispatch on what
        # can be a per-request call.
        index = int(minute)
        last = len(self.qpm) - 1
        if index < 0:
            index = 0
        elif index > last:
            index = last
        return self.qpm[index]

    def scaled(self, factor: float) -> "WorkloadTrace":
        """Return a copy with every minute multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return WorkloadTrace(name=f"{self.name}-x{factor:g}", qpm=tuple(q * factor for q in self.qpm))

    def normalized(self, min_qpm: float, max_qpm: float) -> "WorkloadTrace":
        """Min-max normalise into [min_qpm, max_qpm] (the SysX anonymisation)."""
        if max_qpm < min_qpm:
            raise ValueError("max_qpm must be >= min_qpm")
        values = np.asarray(self.qpm, dtype=np.float64)
        lo, hi = values.min(), values.max()
        if hi == lo:
            scaled = np.full_like(values, (min_qpm + max_qpm) / 2.0)
        else:
            scaled = min_qpm + (values - lo) / (hi - lo) * (max_qpm - min_qpm)
        return WorkloadTrace(name=f"{self.name}-norm", qpm=tuple(float(v) for v in scaled))

    def window(self, start_minute: int, length_minutes: int) -> "WorkloadTrace":
        """Contiguous slice of the trace."""
        if start_minute < 0 or length_minutes <= 0:
            raise ValueError("invalid window")
        return WorkloadTrace(
            name=f"{self.name}[{start_minute}:{start_minute + length_minutes}]",
            qpm=self.qpm[start_minute : start_minute + length_minutes],
        )


class TraceLibrary:
    """Factory for the evaluation traces used throughout the paper."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _rng(self, salt: str) -> np.random.Generator:
        # crc32, not hash(): string hashes are salted per process, which
        # would make every run see a different trace.  Deliberately NOT
        # repro.simulation.randomness.stable_hash — the benchmark suite's
        # expected figures are calibrated against the exact trace draws this
        # seeding produces, so the scheme is pinned like a fixture.
        return np.random.default_rng(
            (self.seed * 7_919 + zlib.crc32(salt.encode("utf-8"))) % (1 << 32)
        )

    # ------------------------------------------------------------------ #
    # Real-trace lookalikes
    # ------------------------------------------------------------------ #
    def twitter_like(
        self,
        duration_minutes: int = 800,
        base_qpm: float = 55.0,
        peak_qpm: float = 160.0,
    ) -> WorkloadTrace:
        """Diurnal pattern with occasional spikes (the 2018 Twitter trace)."""
        rng = self._rng("twitter")
        minutes = np.arange(duration_minutes)
        # One full diurnal cycle across the requested duration: trough at the
        # start and end, peak in the middle, so any window is representative.
        diurnal = 0.5 * (1.0 + np.sin(2.0 * np.pi * minutes / duration_minutes - np.pi / 2.0))
        qpm = base_qpm + (peak_qpm - base_qpm) * diurnal
        qpm *= 1.0 + rng.normal(0.0, 0.05, size=duration_minutes)
        # A handful of unexpected spikes, as noted by prior serving work.
        for _ in range(max(1, duration_minutes // 250)):
            start = int(rng.integers(0, max(1, duration_minutes - 30)))
            width = int(rng.integers(10, 30))
            qpm[start : start + width] *= rng.uniform(1.15, 1.35)
        return WorkloadTrace("twitter", tuple(float(max(1.0, q)) for q in qpm))

    def sysx_like(
        self,
        duration_minutes: int = 800,
        min_qpm: float = 45.0,
        max_qpm: float = 160.0,
    ) -> WorkloadTrace:
        """Jittery production T2I trace, min-max normalised like the paper."""
        rng = self._rng("sysx")
        qpm = np.zeros(duration_minutes)
        level = 0.5
        for minute in range(duration_minutes):
            level += rng.normal(0.0, 0.06)
            level = float(np.clip(level, 0.05, 1.0))
            if rng.random() < 0.02:
                level = float(np.clip(level + rng.uniform(0.2, 0.5), 0.05, 1.0))
            if rng.random() < 0.02:
                level = float(np.clip(level - rng.uniform(0.2, 0.4), 0.05, 1.0))
            qpm[minute] = level
        trace = WorkloadTrace("sysx-raw", tuple(float(v) for v in qpm))
        normalized = trace.normalized(min_qpm, max_qpm)
        return WorkloadTrace("sysx", normalized.qpm)

    # ------------------------------------------------------------------ #
    # Synthetic patterns
    # ------------------------------------------------------------------ #
    def bursty(
        self,
        duration_minutes: int = 400,
        low_qpm: float = 60.0,
        high_qpm: float = 155.0,
        mean_burst_minutes: float = 35.0,
    ) -> WorkloadTrace:
        """Interleaved low/high periods with exponentially distributed lengths."""
        rng = self._rng("bursty")
        qpm: list[float] = []
        high = False
        while len(qpm) < duration_minutes:
            length = max(5, int(rng.exponential(mean_burst_minutes)))
            level = high_qpm if high else low_qpm
            noise = rng.normal(0.0, level * 0.04, size=length)
            qpm.extend(float(max(1.0, level + n)) for n in noise)
            high = not high
        return WorkloadTrace("bursty", tuple(qpm[:duration_minutes]))

    def increasing(
        self,
        duration_minutes: int = 800,
        start_qpm: float = 40.0,
        end_qpm: float = 240.0,
    ) -> WorkloadTrace:
        """Linearly increasing stress-test workload (Fig. 17)."""
        rng = self._rng("increasing")
        ramp = np.linspace(start_qpm, end_qpm, duration_minutes)
        ramp *= 1.0 + rng.normal(0.0, 0.02, size=duration_minutes)
        return WorkloadTrace("increasing", tuple(float(max(1.0, q)) for q in ramp))

    def constant(self, duration_minutes: int = 60, qpm: float = 120.0) -> WorkloadTrace:
        """Flat load, useful for unit tests and calibration."""
        return WorkloadTrace("constant", tuple(float(qpm) for _ in range(duration_minutes)))

    def by_name(self, name: str, **kwargs) -> WorkloadTrace:
        """Build a trace by name ('twitter', 'sysx', 'bursty', 'increasing', 'constant')."""
        builders = {
            "twitter": self.twitter_like,
            "sysx": self.sysx_like,
            "bursty": self.bursty,
            "increasing": self.increasing,
            "constant": self.constant,
        }
        if name not in builders:
            raise KeyError(f"unknown trace {name!r}; known: {sorted(builders)}")
        return builders[name](**kwargs)
