"""Named workload shapes: parametric QPM trace generators for scenarios.

Where :class:`repro.workloads.traces.TraceLibrary` reproduces the paper's
evaluation traces (whose exact draws are pinned by the benchmark suite),
this module provides *composable* shape generators for the scenario engine:
each shape is a pure function ``(seed, **params) -> WorkloadTrace`` drawing
from its own :func:`stable_hash`-derived stream, so a scenario spec can name
a shape and its parameters declaratively and get the same trace on every
machine and every run.

Shapes:

- ``steady``       — flat load with optional noise
- ``diurnal``      — sinusoidal day/night cycle (the 24h pattern)
- ``flash-crowd``  — steady baseline with a sudden multiplicative spike
- ``ramp``         — linear ramp between two rates (Fig. 17 stress shape)
- ``updown``       — ramp up then back down (the §6 autoscaling exercise)
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.simulation.randomness import stable_hash
from repro.workloads.traces import WorkloadTrace


def _shape_rng(seed: int, shape: str) -> np.random.Generator:
    """Independent generator per (seed, shape) pair, stable across runs."""
    derived = (int(seed) * 0x9E3779B1 + stable_hash(f"shape:{shape}")) % (1 << 63)
    return np.random.default_rng(derived)


def _finish(name: str, qpm: np.ndarray, noise: float, rng: np.random.Generator) -> WorkloadTrace:
    """Apply multiplicative noise and clamp to a valid trace."""
    if noise > 0.0:
        qpm = qpm * (1.0 + rng.normal(0.0, noise, size=len(qpm)))
    return WorkloadTrace(name, tuple(float(max(1.0, q)) for q in qpm))


def steady(
    seed: int = 0,
    duration_minutes: int = 60,
    qpm: float = 90.0,
    noise: float = 0.0,
) -> WorkloadTrace:
    """Flat offered load, optionally with small multiplicative jitter."""
    rng = _shape_rng(seed, "steady")
    values = np.full(int(duration_minutes), float(qpm))
    return _finish("steady", values, noise, rng)


def diurnal(
    seed: int = 0,
    duration_minutes: int = 1440,
    base_qpm: float = 50.0,
    peak_qpm: float = 160.0,
    period_minutes: float | None = None,
    noise: float = 0.04,
) -> WorkloadTrace:
    """Sinusoidal day/night cycle: trough at the start, peak mid-period.

    ``period_minutes`` defaults to the full duration (one cycle); a 24h run
    with ``period_minutes=1440`` gives the classic diurnal pattern, while a
    compressed CI preset can fit a whole cycle into an hour.
    """
    rng = _shape_rng(seed, "diurnal")
    period = float(period_minutes) if period_minutes else float(duration_minutes)
    minutes = np.arange(int(duration_minutes))
    cycle = 0.5 * (1.0 + np.sin(2.0 * np.pi * minutes / period - np.pi / 2.0))
    values = base_qpm + (peak_qpm - base_qpm) * cycle
    return _finish("diurnal", values, noise, rng)


def flash_crowd(
    seed: int = 0,
    duration_minutes: int = 60,
    base_qpm: float = 70.0,
    spike_start_minute: int = 20,
    spike_minutes: int = 10,
    spike_multiplier: float = 3.0,
    decay_minutes: int = 6,
    noise: float = 0.03,
) -> WorkloadTrace:
    """Steady load with a sudden flash-crowd spike and a linear decay tail.

    The spike is a step up to ``base_qpm * spike_multiplier`` held for
    ``spike_minutes``, then a linear decay back to baseline over
    ``decay_minutes`` — the shape that stresses backlog-triggered
    recalibration and, past the fleet ceiling, the load-driven AC→SM switch.
    """
    rng = _shape_rng(seed, "flash-crowd")
    values = np.full(int(duration_minutes), float(base_qpm))
    start = int(spike_start_minute)
    stop = min(start + int(spike_minutes), len(values))
    values[start:stop] = base_qpm * spike_multiplier
    for i in range(int(decay_minutes)):
        index = stop + i
        if index >= len(values):
            break
        fraction = (i + 1) / (decay_minutes + 1)
        values[index] = base_qpm * (spike_multiplier + (1.0 - spike_multiplier) * fraction)
    return _finish("flash-crowd", values, noise, rng)


def ramp(
    seed: int = 0,
    duration_minutes: int = 90,
    start_qpm: float = 40.0,
    end_qpm: float = 240.0,
    noise: float = 0.02,
) -> WorkloadTrace:
    """Linear ramp between two rates (the Fig. 17 stress shape)."""
    rng = _shape_rng(seed, "ramp")
    values = np.linspace(float(start_qpm), float(end_qpm), int(duration_minutes))
    return _finish("ramp", values, noise, rng)


def updown(
    seed: int = 0,
    ramp_minutes: int = 90,
    descent_minutes: int = 30,
    start_qpm: float = 40.0,
    peak_qpm: float = 240.0,
    noise: float = 0.02,
) -> WorkloadTrace:
    """Ramp up to a peak, then descend back — the §6 autoscaling exercise."""
    rng = _shape_rng(seed, "updown")
    up = np.linspace(float(start_qpm), float(peak_qpm), int(ramp_minutes))
    down = np.linspace(float(peak_qpm), float(start_qpm), int(descent_minutes) + 1)[1:]
    return _finish("updown", np.concatenate([up, down]), noise, rng)


#: Registry of shape generators by declarative name.
SHAPES: dict[str, Callable[..., WorkloadTrace]] = {
    "steady": steady,
    "diurnal": diurnal,
    "flash-crowd": flash_crowd,
    "ramp": ramp,
    "updown": updown,
}


def build_shape(name: str, seed: int = 0, **params) -> WorkloadTrace:
    """Build a named shape with the given parameters."""
    try:
        builder = SHAPES[name]
    except KeyError:
        raise KeyError(f"unknown shape {name!r}; known: {sorted(SHAPES)}") from None
    return builder(seed=seed, **params)
