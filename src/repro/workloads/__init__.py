"""Workload substrate: QPM traces, arrival processes and request streams.

The paper evaluates on a Twitter trace (diurnal with spikes), a proprietary
SysX text-to-image trace (jittery, normalised to the Twitter range), a
synthetic bursty Poisson workload and a linearly increasing stress workload.
This package synthesises traces with those shapes and converts them into
timestamped request arrivals.
"""

from repro.workloads.traces import WorkloadTrace, TraceLibrary
from repro.workloads.arrival import ArrivalProcess
from repro.workloads.replay import RequestStream, TimedPrompt

__all__ = [
    "ArrivalProcess",
    "RequestStream",
    "TimedPrompt",
    "TraceLibrary",
    "WorkloadTrace",
]
