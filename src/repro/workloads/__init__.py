"""Workload substrate: QPM traces, arrival processes and request streams.

The paper evaluates on a Twitter trace (diurnal with spikes), a proprietary
SysX text-to-image trace (jittery, normalised to the Twitter range), a
synthetic bursty Poisson workload and a linearly increasing stress workload.
This package synthesises traces with those shapes and converts them into
timestamped request arrivals.
"""

from repro.workloads.arrival import ArrivalProcess
from repro.workloads.replay import PhasedRequestStream, RequestStream, TimedPrompt
from repro.workloads.shapes import SHAPES, build_shape
from repro.workloads.tenants import (
    MultiTenantRequestStream,
    TenantRuntime,
    TenantSpec,
    build_runtimes,
    resolve_shares,
)
from repro.workloads.traces import TraceLibrary, WorkloadTrace

__all__ = [
    "SHAPES",
    "ArrivalProcess",
    "MultiTenantRequestStream",
    "PhasedRequestStream",
    "RequestStream",
    "TenantRuntime",
    "TenantSpec",
    "TimedPrompt",
    "TraceLibrary",
    "WorkloadTrace",
    "build_runtimes",
    "build_shape",
    "resolve_shares",
]
