"""Arrival processes: convert a QPM trace into timestamped arrivals."""

from __future__ import annotations

import numpy as np

from repro.workloads.traces import WorkloadTrace


class ArrivalProcess:
    """Generates per-request arrival timestamps from a workload trace."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def poisson_arrivals(self, trace: WorkloadTrace) -> list[float]:
        """Non-homogeneous Poisson arrivals following the trace's QPM.

        Within each minute the arrival rate is constant at ``qpm / 60``
        requests per second; inter-arrival gaps are exponential.
        """
        rng = np.random.default_rng(self.seed)
        arrivals: list[float] = []
        for minute, qpm in enumerate(trace.qpm):
            if qpm <= 0:
                continue
            rate_per_s = qpm / 60.0
            t = minute * 60.0
            end = (minute + 1) * 60.0
            while True:
                t += rng.exponential(1.0 / rate_per_s)
                if t >= end:
                    break
                arrivals.append(float(t))
        return arrivals

    def uniform_arrivals(self, trace: WorkloadTrace) -> list[float]:
        """Evenly spaced arrivals matching each minute's QPM exactly.

        Deterministic; useful for tests where the exact request count
        matters more than realistic burstiness.
        """
        arrivals: list[float] = []
        for minute, qpm in enumerate(trace.qpm):
            count = int(round(qpm))
            if count <= 0:
                continue
            gap = 60.0 / count
            start = minute * 60.0
            arrivals.extend(start + gap * (i + 0.5) for i in range(count))
        return arrivals

    def arrivals(self, trace: WorkloadTrace, kind: str = "poisson") -> list[float]:
        """Dispatch on arrival ``kind``: 'poisson' or 'uniform'."""
        if kind == "poisson":
            return self.poisson_arrivals(trace)
        if kind == "uniform":
            return self.uniform_arrivals(trace)
        raise ValueError(f"unknown arrival kind {kind!r}")
