"""Arrival processes: convert a QPM trace into timestamped arrivals.

Every process is available in two forms: a generator (``iter_*``) that
yields one timestamp at a time — the basis of the lazy streaming path, where
million-request traces never materialise a full arrival list — and a
list-returning convenience wrapper for tests and offline analysis.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.workloads.traces import WorkloadTrace


class ArrivalProcess:
    """Generates per-request arrival timestamps from a workload trace."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    # ------------------------------------------------------------------ #
    # Streaming generators
    # ------------------------------------------------------------------ #
    def iter_poisson_arrivals(self, trace: WorkloadTrace) -> Iterator[float]:
        """Non-homogeneous Poisson arrivals following the trace's QPM.

        Within each minute the arrival rate is constant at ``qpm / 60``
        requests per second; inter-arrival gaps are exponential.

        Gaps are drawn as buffered chunks of standard exponentials scaled by
        the current minute's rate.  ``Generator.exponential(scale)`` is
        ``scale * standard_exponential()`` consuming the same bitstream, so
        the arrival sequence is bit-identical to drawing one gap at a time —
        at a fraction of the per-arrival cost on multi-million-request
        traces.
        """
        rng = np.random.default_rng(self.seed)
        chunk = rng.standard_exponential(4096)
        position = 0
        for minute, qpm in enumerate(trace.qpm):
            if qpm <= 0:
                continue
            rate_per_s = qpm / 60.0
            scale = 1.0 / rate_per_s
            t = minute * 60.0
            end = (minute + 1) * 60.0
            while True:
                if position == 4096:
                    chunk = rng.standard_exponential(4096)
                    position = 0
                t += chunk[position] * scale
                position += 1
                if t >= end:
                    break
                yield float(t)

    def iter_uniform_arrivals(self, trace: WorkloadTrace) -> Iterator[float]:
        """Evenly spaced arrivals matching each minute's QPM exactly.

        Deterministic; useful for tests where the exact request count
        matters more than realistic burstiness.
        """
        for minute, qpm in enumerate(trace.qpm):
            count = int(round(qpm))
            if count <= 0:
                continue
            gap = 60.0 / count
            start = minute * 60.0
            for i in range(count):
                yield start + gap * (i + 0.5)

    def iter_arrivals(self, trace: WorkloadTrace, kind: str = "poisson") -> Iterator[float]:
        """Streaming dispatch on arrival ``kind``: 'poisson' or 'uniform'."""
        if kind == "poisson":
            return self.iter_poisson_arrivals(trace)
        if kind == "uniform":
            return self.iter_uniform_arrivals(trace)
        raise ValueError(f"unknown arrival kind {kind!r}")

    # ------------------------------------------------------------------ #
    # Materialising wrappers
    # ------------------------------------------------------------------ #
    def poisson_arrivals(self, trace: WorkloadTrace) -> list[float]:
        """All Poisson arrival timestamps as a list."""
        return list(self.iter_poisson_arrivals(trace))

    def uniform_arrivals(self, trace: WorkloadTrace) -> list[float]:
        """All uniform arrival timestamps as a list."""
        return list(self.iter_uniform_arrivals(trace))

    def arrivals(self, trace: WorkloadTrace, kind: str = "poisson") -> list[float]:
        """Dispatch on arrival ``kind``: 'poisson' or 'uniform'."""
        return list(self.iter_arrivals(trace, kind=kind))
