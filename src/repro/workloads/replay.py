"""Request streams: pair arrival timestamps with prompts in dataset order.

The paper replays DiffusionDB prompts in their original arrival sequence on
top of the trace's QPS pattern; :class:`RequestStream` does the same with
the synthetic dataset, wrapping around when the trace needs more requests
than the dataset holds.

Iterating a stream is lazy: timestamps come from the arrival process one at
a time, so feeding a stream to ``schedule_arrivals`` keeps memory O(1) even
for million-request traces.  Random-access helpers (``len``, indexing,
``between``) materialise the stream on first use and cache it.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.prompts.dataset import PromptDataset
from repro.prompts.generator import Prompt
from repro.workloads.arrival import ArrivalProcess
from repro.workloads.traces import WorkloadTrace


@dataclass(frozen=True, slots=True)
class TimedPrompt:
    """A prompt with its arrival time."""

    arrival_time_s: float
    prompt: Prompt


class RequestStream:
    """An ordered stream of timed prompts built from a trace and a dataset."""

    def __init__(
        self,
        trace: WorkloadTrace,
        dataset: PromptDataset,
        seed: int = 0,
        arrival_kind: str = "poisson",
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("dataset must not be empty")
        if arrival_kind not in ("poisson", "uniform"):
            raise ValueError(f"unknown arrival kind {arrival_kind!r}")
        self.trace = trace
        self.dataset = dataset
        self.seed = int(seed)
        self.arrival_kind = arrival_kind
        self._materialized: list[TimedPrompt] | None = None

    def _iter_lazy(self) -> Iterator[TimedPrompt]:
        """Generate timed prompts on demand (fresh pass over the arrivals)."""
        process = ArrivalProcess(seed=self.seed)
        dataset_size = len(self.dataset)
        for index, arrival in enumerate(process.iter_arrivals(self.trace, self.arrival_kind)):
            yield TimedPrompt(arrival_time_s=arrival, prompt=self.dataset[index % dataset_size])

    @property
    def is_materialized(self) -> bool:
        """Whether the full stream has been expanded into memory."""
        return self._materialized is not None

    @property
    def _timed(self) -> list[TimedPrompt]:
        if self._materialized is None:
            self._materialized = list(self._iter_lazy())
        return self._materialized

    def __len__(self) -> int:
        return len(self._timed)

    def __iter__(self) -> Iterator[TimedPrompt]:
        if self._materialized is not None:
            return iter(self._materialized)
        return self._iter_lazy()

    def __getitem__(self, index: int) -> TimedPrompt:
        return self._timed[index]

    @property
    def duration_s(self) -> float:
        """Length of the stream in simulated seconds (trace duration)."""
        return self.trace.duration_minutes * 60.0

    @property
    def arrivals(self) -> list[float]:
        """All arrival timestamps, sorted."""
        return [tp.arrival_time_s for tp in self._timed]

    def offered_qpm(self, minute: int) -> float:
        """Offered load during a given minute, from the underlying trace."""
        return self.trace.qpm_at(minute)

    def between(self, start_s: float, end_s: float) -> list[TimedPrompt]:
        """Timed prompts arriving within [start_s, end_s)."""
        return [tp for tp in self._timed if start_s <= tp.arrival_time_s < end_s]


class PhasedRequestStream(RequestStream):
    """A request stream whose prompt distribution shifts over time.

    ``phases`` is a sequence of ``(start_s, dataset)`` pairs sorted by start
    time with the first phase starting at 0.0; each arrival draws (cyclically,
    with a per-phase cursor) from the dataset of the phase its timestamp
    falls in.  Arrival *timestamps* come from the same lazy arrival process
    as :class:`RequestStream`, so a drift schedule perturbs only the prompt
    mix — the offered load is identical to the undrifted stream.

    This is the workload-side half of classifier drift (Fig. 18): the served
    prompt distribution changes mid-run and the system's drift detector is
    expected to notice and retrain.
    """

    def __init__(
        self,
        trace: WorkloadTrace,
        phases: Sequence[tuple[float, PromptDataset]],
        seed: int = 0,
        arrival_kind: str = "poisson",
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        starts = [float(start) for start, _ in phases]
        if starts[0] != 0.0:
            raise ValueError("first phase must start at 0.0")
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("phase start times must be strictly increasing")
        super().__init__(trace=trace, dataset=phases[0][1], seed=seed, arrival_kind=arrival_kind)
        self.phases = [(float(start), dataset) for start, dataset in phases]
        for _, dataset in self.phases:
            if len(dataset) == 0:
                raise ValueError("phase datasets must not be empty")

    def dataset_at(self, time_s: float) -> PromptDataset:
        """The prompt dataset in force at ``time_s``."""
        active = self.phases[0][1]
        for start, dataset in self.phases:
            if time_s < start:
                break
            active = dataset
        return active

    def _iter_lazy(self) -> Iterator[TimedPrompt]:
        process = ArrivalProcess(seed=self.seed)
        cursors = [0] * len(self.phases)
        index = 0
        for arrival in process.iter_arrivals(self.trace, self.arrival_kind):
            while index + 1 < len(self.phases) and arrival >= self.phases[index + 1][0]:
                index += 1
            dataset = self.phases[index][1]
            yield TimedPrompt(
                arrival_time_s=arrival, prompt=dataset[cursors[index] % len(dataset)]
            )
            cursors[index] += 1
