"""Request streams: pair arrival timestamps with prompts in dataset order.

The paper replays DiffusionDB prompts in their original arrival sequence on
top of the trace's QPS pattern; :class:`RequestStream` does the same with
the synthetic dataset, wrapping around when the trace needs more requests
than the dataset holds.

Iterating a stream is lazy: timestamps come from the arrival process one at
a time, so feeding a stream to ``schedule_arrivals`` keeps memory O(1) even
for million-request traces.  Random-access helpers (``len``, indexing,
``between``) materialise the stream on first use and cache it.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.prompts.dataset import PromptDataset
from repro.prompts.generator import Prompt
from repro.workloads.arrival import ArrivalProcess
from repro.workloads.traces import WorkloadTrace


@dataclass(frozen=True)
class TimedPrompt:
    """A prompt with its arrival time."""

    arrival_time_s: float
    prompt: Prompt


class RequestStream:
    """An ordered stream of timed prompts built from a trace and a dataset."""

    def __init__(
        self,
        trace: WorkloadTrace,
        dataset: PromptDataset,
        seed: int = 0,
        arrival_kind: str = "poisson",
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("dataset must not be empty")
        if arrival_kind not in ("poisson", "uniform"):
            raise ValueError(f"unknown arrival kind {arrival_kind!r}")
        self.trace = trace
        self.dataset = dataset
        self.seed = int(seed)
        self.arrival_kind = arrival_kind
        self._materialized: list[TimedPrompt] | None = None

    def _iter_lazy(self) -> Iterator[TimedPrompt]:
        """Generate timed prompts on demand (fresh pass over the arrivals)."""
        process = ArrivalProcess(seed=self.seed)
        dataset_size = len(self.dataset)
        for index, arrival in enumerate(process.iter_arrivals(self.trace, self.arrival_kind)):
            yield TimedPrompt(arrival_time_s=arrival, prompt=self.dataset[index % dataset_size])

    @property
    def is_materialized(self) -> bool:
        """Whether the full stream has been expanded into memory."""
        return self._materialized is not None

    @property
    def _timed(self) -> list[TimedPrompt]:
        if self._materialized is None:
            self._materialized = list(self._iter_lazy())
        return self._materialized

    def __len__(self) -> int:
        return len(self._timed)

    def __iter__(self) -> Iterator[TimedPrompt]:
        if self._materialized is not None:
            return iter(self._materialized)
        return self._iter_lazy()

    def __getitem__(self, index: int) -> TimedPrompt:
        return self._timed[index]

    @property
    def duration_s(self) -> float:
        """Length of the stream in simulated seconds (trace duration)."""
        return self.trace.duration_minutes * 60.0

    @property
    def arrivals(self) -> list[float]:
        """All arrival timestamps, sorted."""
        return [tp.arrival_time_s for tp in self._timed]

    def offered_qpm(self, minute: int) -> float:
        """Offered load during a given minute, from the underlying trace."""
        return self.trace.qpm_at(minute)

    def between(self, start_s: float, end_s: float) -> list[TimedPrompt]:
        """Timed prompts arriving within [start_s, end_s)."""
        return [tp for tp in self._timed if start_s <= tp.arrival_time_s < end_s]
