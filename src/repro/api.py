"""High-level facade: the four calls most users need.

The repo's deep module paths stay public and stable, but a typical session
only needs four verbs, collected here:

- :func:`load_scenario` — look up a registered scenario spec by name.
- :func:`run` — run a scenario in simulation and get a ``ScenarioRun``.
- :func:`serve` — start the live HTTP gateway and block.
- :func:`replay` — fire a scenario's request stream at a live gateway.

Example::

    import repro

    run = repro.run("steady-baseline", preset="small")
    print(run.summary.as_row())

    result = repro.replay("steady-baseline", preset="small", time_scale=60)
    print(result.report["summary"]["total_completions"])
"""

from __future__ import annotations

import asyncio

from repro.core.config import ArgusConfig
from repro.gateway.loadgen import LoadgenResult
from repro.gateway.loadgen import replay as _replay
from repro.gateway.server import Gateway
from repro.scenarios.registry import get_scenario
from repro.scenarios.runtime import ScenarioRun, run_scenario
from repro.scenarios.spec import Scenario


def load_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name (see ``python -m repro list``)."""
    return get_scenario(name)


def run(
    scenario: Scenario | str,
    preset: str = "full",
    seed: int | None = None,
    system: str | None = None,
    shards: int | None = None,
    sync_window_s: float | None = None,
) -> ScenarioRun:
    """Run a scenario in simulation; same (scenario, preset, seed) in, same
    bits out.  Delegates to :func:`repro.scenarios.runtime.run_scenario`."""
    return run_scenario(
        scenario,
        preset=preset,
        seed=seed,
        system=system,
        shards=shards,
        sync_window_s=sync_window_s,
    )


def serve(
    config: ArgusConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    time_scale: float = 1.0,
) -> None:
    """Start the live HTTP gateway and serve until interrupted.

    ``time_scale`` compresses model time (60 = one model-minute per wall
    second).  For programmatic control construct
    :class:`repro.gateway.server.Gateway` directly.
    """

    async def _serve() -> None:
        gateway = Gateway(config=config, time_scale=time_scale)
        await gateway.start(host=host, port=port)
        print(f"gateway listening on {gateway.url} (time_scale={time_scale:g})")
        try:
            await gateway.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await gateway.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass


def replay(
    scenario: Scenario | str,
    preset: str = "small",
    seed: int | None = None,
    time_scale: float = 60.0,
    url: str | None = None,
    config: ArgusConfig | None = None,
    check_contracts: bool = False,
    max_minutes: float | None = None,
) -> LoadgenResult:
    """Replay a scenario's request stream against a live gateway.

    With ``url=None`` a loopback gateway is started for the duration.
    Delegates to :func:`repro.gateway.loadgen.replay`.
    """
    return _replay(
        scenario,
        preset=preset,
        seed=seed,
        time_scale=time_scale,
        url=url,
        config=config,
        check_contracts=check_contracts,
        max_minutes=max_minutes,
    )


__all__ = ["Gateway", "LoadgenResult", "load_scenario", "replay", "run", "serve"]
