"""Root pytest configuration: mark tests by suite.

Everything under ``benchmarks/`` is marked ``bench`` (slow end-to-end paper
reproductions); everything else is marked ``unit``.  This powers the fast
tier-1 loop ``pytest -m "not bench"``.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(config, items) -> None:
    for item in items:
        if item.nodeid.startswith("benchmarks/"):
            item.add_marker(pytest.mark.bench)
        else:
            item.add_marker(pytest.mark.unit)
