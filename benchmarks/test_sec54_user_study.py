"""§5.4 / §5.7: simulated user-perception study.

The simulator converts each system's per-request relative quality (collected
under load on the bursty workload) into suitability votes from 186 simulated
participants.  The paper's ranking — SD-XL-always (Clipper-HA) > Argus >
PAC > Proteus > Clipper-HT — must be preserved.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import BENCH_TRACE_MINUTES, bench_config, print_table
from repro.experiments.runner import build_system
from repro.quality.user_study import UserStudySimulator

SYSTEMS = ["clipper-ha", "argus", "pac", "proteus", "clipper-ht"]


@pytest.fixture(scope="module")
def study_inputs(runner, trace_library, training_dataset):
    trace = trace_library.bursty(duration_minutes=BENCH_TRACE_MINUTES)
    samples = {}
    for name in SYSTEMS:
        system = build_system(name, config=bench_config(), training_dataset=training_dataset)
        runner.run(system, trace)
        samples[system.name] = system.collector.relative_qualities()
    return samples


def test_sec54_user_study(benchmark, study_inputs):
    study = UserStudySimulator(num_participants=186, seed=0)

    def run_study():
        return study.compare(study_inputs)

    results = benchmark.pedantic(run_study, rounds=1, iterations=1)

    rows = [
        {
            "system": r.system,
            "prompt_relevance_rate": r.prompt_relevance_rate,
            "overall_quality_rate": r.overall_quality_rate,
            "votes": r.num_votes,
        }
        for r in results
    ]
    print_table("§5.4: simulated user study (suitability vote rates)", rows)

    rates = {r.system: r.prompt_relevance_rate for r in results}
    # Clipper-HA (always SD-XL) tops the study but is not scalable.
    assert rates["Clipper-HA"] >= rates["Argus"]
    # Argus beats every scalable baseline.
    assert rates["Argus"] >= rates["PAC"] - 0.01
    assert rates["Argus"] > rates["Proteus"]
    assert rates["Argus"] > rates["Clipper-HT"]
    # Clipper-HT (always the smallest model) is rated lowest.
    assert rates["Clipper-HT"] == min(rates.values())
