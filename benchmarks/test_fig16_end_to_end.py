"""Fig. 16: end-to-end comparison of Argus against all baselines on the
Twitter-shaped, bursty and SysX-shaped workloads.

For each (workload, system) pair the benchmark reports served throughput,
SLO violation ratio and relative quality — the three panels of Fig. 16.
The paper's headline claims checked here:

* Argus meets the offered load with the lowest SLO violation ratio among
  the adaptive systems (up to ~10x lower than Proteus/Sommelier);
* Argus's quality is higher than every scalable baseline (only the
  non-scalable Clipper-HA and the non-adaptive NIRVANA score higher);
* Clipper-HA cannot keep up (most SLO violations), Clipper-HT keeps up with
  the worst quality.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import BENCH_TRACE_MINUTES, bench_config, print_series, print_table
from repro.experiments.runner import build_system

SYSTEMS = ["argus", "pac", "proteus", "sommelier", "nirvana", "clipper-ha", "clipper-ht"]


@pytest.fixture(scope="module")
def fig16_results(runner, trace_library, training_dataset):
    traces = {
        "twitter": trace_library.twitter_like(duration_minutes=BENCH_TRACE_MINUTES),
        "bursty": trace_library.bursty(duration_minutes=BENCH_TRACE_MINUTES),
        "sysx": trace_library.sysx_like(duration_minutes=BENCH_TRACE_MINUTES),
    }
    results = {}
    for trace_name, trace in traces.items():
        for system_name in SYSTEMS:
            system = build_system(
                system_name, config=bench_config(), training_dataset=training_dataset
            )
            results[(trace_name, system_name)] = runner.run(system, trace)
    return traces, results


def test_fig16_end_to_end_comparison(benchmark, fig16_results):
    traces, results = fig16_results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    for trace_name in traces:
        rows = []
        for system_name in SYSTEMS:
            summary = results[(trace_name, system_name)].summary
            rows.append(
                {
                    "system": summary.system,
                    "served_qpm": summary.mean_served_qpm,
                    "offered_qpm": traces[trace_name].mean_qpm,
                    "slo_violation_ratio": summary.slo_violation_ratio,
                    "relative_quality": summary.mean_relative_quality,
                    "effective_accuracy": summary.effective_accuracy,
                    "model_loads": summary.model_loads,
                }
            )
        print_table(f"Fig. 16 ({trace_name}): end-to-end comparison", rows)
        argus_series = results[(trace_name, "argus")]
        print_series(
            f"Fig. 16 ({trace_name}): Argus per-minute series",
            {
                "offered_qpm": argus_series.offered_qpm_series,
                "served_qpm": argus_series.served_qpm_series,
                "violation_ratio": argus_series.violation_ratio_series,
                "relative_quality": argus_series.relative_quality_series,
            },
        )


def test_fig16_argus_claims_hold(fig16_results):
    traces, results = fig16_results
    for trace_name, trace in traces.items():
        argus = results[(trace_name, "argus")].summary
        proteus = results[(trace_name, "proteus")].summary
        sommelier = results[(trace_name, "sommelier")].summary
        nirvana = results[(trace_name, "nirvana")].summary
        clipper_ha = results[(trace_name, "clipper-ha")].summary
        clipper_ht = results[(trace_name, "clipper-ht")].summary
        pac = results[(trace_name, "pac")].summary

        # Argus meets the offered load.
        assert argus.mean_served_qpm > 0.93 * trace.mean_qpm
        # Lowest SLO violations among the adaptive / scalable systems.
        assert argus.slo_violation_ratio <= proteus.slo_violation_ratio + 0.01
        assert argus.slo_violation_ratio <= sommelier.slo_violation_ratio + 0.01
        assert argus.slo_violation_ratio < nirvana.slo_violation_ratio + 0.01
        assert argus.slo_violation_ratio < clipper_ha.slo_violation_ratio
        # Higher quality than the SM-only scalable baselines.
        assert argus.mean_pickscore > proteus.mean_pickscore
        assert argus.mean_pickscore > clipper_ht.mean_pickscore
        assert argus.mean_pickscore >= pac.mean_pickscore - 0.05
        # Clipper-HA keeps quality but collapses on throughput/SLO under load.
        assert clipper_ha.mean_relative_quality > argus.mean_relative_quality
        assert clipper_ha.slo_violation_ratio > 3 * max(argus.slo_violation_ratio, 0.02)
