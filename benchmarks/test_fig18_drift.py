"""Fig. 18: classifier accuracy over time with drift-triggered retraining.

The prompt mix shifts mid-stream (harder prompts); the drift detector fires
when the median PickScore falls below the moving average, retraining
restores accuracy on the new distribution.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import print_table
from repro.classifier.drift import DriftDetector
from repro.classifier.trainer import ClassifierTrainer
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.quality.optimal import OptimalModelSelector
from repro.quality.pickscore import PickScoreModel


def test_fig18_drift_triggered_retraining(benchmark):
    pickscore = PickScoreModel(seed=0)
    trainer = ClassifierTrainer(pickscore)
    selector = OptimalModelSelector(pickscore)

    original = PromptDataset.synthetic(count=1500, seed=31).prompts
    drifted = PromptDataset.synthetic(count=1500, seed=32, complexity_bias=0.35).prompts

    def run_timeline():
        predictor = trainer.train(original[:1000], Strategy.AC, epochs=12, seed=0)
        detector = DriftDetector(window_size=150, warmup_windows=1, tolerance=0.02)
        timeline = []
        retrain_events = 0
        # 10 windows of traffic: the first 5 in-distribution, then drifted.
        windows = [original[1000 + i * 100 : 1000 + (i + 1) * 100] for i in range(5)]
        windows += [drifted[i * 250 : (i + 1) * 250] for i in range(5)]
        recent: list = []
        for index, window in enumerate(windows):
            ranks = predictor.predict_ranks(window)
            truth = [selector.optimal_rank(p, Strategy.AC) for p in window]
            accuracy = float(np.mean([r == t for r, t in zip(ranks, truth)]))
            scores = [pickscore.score(p, Strategy.AC, r) for p, r in zip(window, ranks)]
            recent.extend(window)
            drift = detector.observe_many(scores)
            if drift:
                retrain_events += len(drift)
                # Retrain on the most recent traffic (the images generated
                # during normal operation), which after drift is dominated by
                # the new prompt distribution.
                predictor = trainer.train(
                    recent[-500:], Strategy.AC, epochs=16, seed=0
                )
                detector.reset()
            timeline.append(
                {
                    "window": index,
                    "phase": "original" if index < 5 else "drifted",
                    "accuracy": accuracy,
                    "mean_pickscore": float(np.mean(scores)),
                    "retrained": bool(drift),
                }
            )
        return timeline, retrain_events

    timeline, retrain_events = benchmark.pedantic(run_timeline, rounds=1, iterations=1)
    print_table("Fig. 18: classifier accuracy over time with drift retraining", timeline)

    pre_drift = [t["accuracy"] for t in timeline if t["phase"] == "original"]
    post_retrain = [t["accuracy"] for t in timeline[-2:]]
    drop_window = timeline[5]

    # Retraining is triggered at least once by the drifted traffic.
    assert retrain_events >= 1
    # Accuracy dips when the drifted traffic first arrives (the classifier
    # was trained on the old distribution) and recovers once retraining has
    # seen enough of the new distribution.
    assert drop_window["accuracy"] < np.mean(pre_drift)
    assert np.mean(post_retrain) > drop_window["accuracy"]
