"""Fig. 20: behaviour under system faults.

(a) GPU failure: half the GPUs go down for a window; Argus's solver detects
    the smaller cluster within a minute and re-allocates, trading quality
    (higher K) to keep serving, with SLO violations rising during the window.
(b) Cache-retrieval failure: the VDB/EFS path becomes unreachable; Argus
    detects the degraded retrievals and switches AC -> SM.  Without the
    switch (the "no-switch" line of Fig. 20b) throughput suffers for the
    whole outage because every prompt falls back to full K=0 generation.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.helpers import bench_config, print_series, print_table
from repro.cache.network import NetworkCondition
from repro.core.system import ArgusSystem
from repro.models.zoo import Strategy

DURATION_MINUTES = 60
FAIL_START_S = 20 * 60.0
FAIL_END_S = 40 * 60.0


@pytest.fixture(scope="module")
def fault_trace(trace_library):
    return trace_library.constant(duration_minutes=DURATION_MINUTES, qpm=120.0)


def _minute_mean(series, start_minute, end_minute):
    window = series[start_minute:end_minute]
    return float(np.mean(window)) if len(window) else 0.0


def test_fig20a_gpu_failure(benchmark, runner, fault_trace, training_dataset):
    def run():
        system = ArgusSystem(config=bench_config(), training_dataset=training_dataset)
        for worker_id in range(4):
            system.cluster.schedule_failure(worker_id, FAIL_START_S, FAIL_END_S)
        return runner.run(system, fault_trace), system

    (result, system) = benchmark.pedantic(run, rounds=1, iterations=1)

    quality = result.relative_quality_series
    violations = result.violation_ratio_series
    served = result.served_qpm_series
    rows = [
        {
            "phase": name,
            "served_qpm": _minute_mean(served, start, end),
            "violation_ratio": _minute_mean(violations, start, end),
            "relative_quality": _minute_mean(quality, start, end),
        }
        for name, start, end in (
            ("before failure", 5, 20),
            ("during failure (4/8 GPUs)", 22, 40),
            ("after recovery", 45, 60),
        )
    ]
    print_table("Fig. 20a: GPU failure (4 of 8 workers down)", rows)
    print_series("Fig. 20a series", {"served": served, "quality": quality, "violations": violations})

    before, during, after = rows
    # The solver re-allocates onto the surviving GPUs: serving continues but
    # at higher approximation (lower quality) and more SLO violations.
    assert during["served_qpm"] > 0.75 * before["served_qpm"]
    assert during["relative_quality"] < before["relative_quality"] - 0.03
    assert during["violation_ratio"] >= before["violation_ratio"]
    # Quality recovers after the GPUs come back.
    assert after["relative_quality"] > during["relative_quality"] + 0.02


def test_fig20b_cache_retrieval_failure(benchmark, runner, fault_trace, training_dataset):
    def run(allow_switching: bool):
        config = bench_config(retrieval_violations_to_switch=10)
        system = ArgusSystem(
            config=config,
            training_dataset=training_dataset,
            allow_strategy_switching=allow_switching,
        )
        system.network.schedule_condition(FAIL_START_S, FAIL_END_S, NetworkCondition.OUTAGE)
        return runner.run(system, fault_trace), system

    def run_both():
        return {"switching": run(True), "no-switch": run(False)}

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, (result, system) in outcomes.items():
        rows.append(
            {
                "variant": label,
                "served_qpm": result.summary.mean_served_qpm,
                "slo_violation_ratio": result.summary.slo_violation_ratio,
                "relative_quality": result.summary.mean_relative_quality,
                "strategy_switches": system.num_strategy_switches(),
                "final_strategy": system.active_strategy.value,
                "model_loads": system.cluster.total_model_loads(),
            }
        )
    print_table("Fig. 20b: cache retrieval outage, with and without AC->SM switch", rows)

    switching_result, switching_system = outcomes["switching"]
    noswitch_result, noswitch_system = outcomes["no-switch"]

    # With switching enabled Argus moves to SM during the outage (and loads
    # smaller models), then returns to AC after recovery.
    assert switching_system.num_strategy_switches() >= 2
    assert switching_system.cluster.total_model_loads() > 0
    assert switching_system.active_strategy is Strategy.AC
    # Without switching every request pays the K=0 fallback during the
    # outage, so SLO violations are clearly worse.
    assert noswitch_system.num_strategy_switches() == 0
    during = slice(22, 40)
    assert _minute_mean(noswitch_result.violation_ratio_series, during.start, during.stop) > (
        _minute_mean(switching_result.violation_ratio_series, during.start, during.stop)
    )
