"""Fig. 10: quality of ODA's redistribution vs ideal and random.

The paper's example: ideal allocation reaches PickScore 20.9; random
redistribution to the feasible load distribution drops to 17.8; ODA's
quality-aware redistribution recovers 19.5.  We reproduce the ordering and
the relative gaps (ODA recovers most of the loss).
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import print_table
from repro.core.oda import OptimizedDistributionAligner, ShiftMap
from repro.core.solver import AllocationSolver
from repro.models.zoo import ModelZoo, Strategy
from repro.quality.optimal import OptimalModelSelector
from repro.quality.profiles import QualityProfiler


def test_fig10_redistribution_quality(benchmark, pickscore, eval_prompts):
    zoo = ModelZoo()
    selector = OptimalModelSelector(pickscore)
    profiler = QualityProfiler(zoo, pickscore)
    prompts = eval_prompts[:1500]
    strategy = Strategy.AC

    def compute():
        affinities = [selector.optimal_rank(p, strategy) for p in prompts]
        affinity_dist = selector.affinity_distribution(prompts, strategy)
        # The paper's Fig. 10 uses a high-load minute where the feasible load
        # distribution spans several approximation levels.  We average the
        # solver's distributions over a band of high target loads to obtain a
        # representative multi-level g(l); a single target tends to collapse
        # onto one or two adjacent levels, which hides the mechanism.
        quality_vector = profiler.quality_vector(strategy, prompts[:500])
        peak = profiler.throughput_vector(strategy)
        plans = [
            AllocationSolver().solve(target, quality_vector, peak, num_workers=8)
            for target in (130.0, 145.0, 160.0, 175.0, 190.0)
        ]
        load_dist = np.mean([plan.load_distribution() for plan in plans], axis=0)
        plan = plans[2]

        oda_map = OptimizedDistributionAligner().align(affinity_dist, load_dist)
        random_map = ShiftMap.load_proportional(load_dist)
        rng = np.random.default_rng(0)

        def realised_quality(shift_map):
            scores = []
            for prompt, affinity in zip(prompts, affinities):
                target = shift_map.sample_target(affinity, rng)
                scores.append(pickscore.score(prompt, strategy, target))
            return float(np.mean(scores))

        ideal = float(
            np.mean(
                [pickscore.score(p, strategy, a) for p, a in zip(prompts, affinities)]
            )
        )
        return {
            "ideal_allocation": ideal,
            "oda_redistribution": realised_quality(oda_map),
            "random_redistribution": realised_quality(random_map),
            "load_distribution": load_dist,
        }

    result = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        {"allocation": "ideal (per-prompt optimal)", "mean_pickscore": result["ideal_allocation"]},
        {"allocation": "ODA-aligned (Argus)", "mean_pickscore": result["oda_redistribution"]},
        {"allocation": "random redistribution", "mean_pickscore": result["random_redistribution"]},
    ]
    print_table("Fig. 10: PickScore under different redistribution strategies", rows)
    print("load distribution g(l):", np.round(result["load_distribution"], 3))

    ideal = result["ideal_allocation"]
    oda = result["oda_redistribution"]
    random_quality = result["random_redistribution"]
    # Ordering: ideal >= ODA > random (paper: 20.9 / 19.5 / 17.8).
    assert ideal >= oda > random_quality
    # ODA recovers a meaningful share of the gap between random and ideal.
    assert (oda - random_quality) > 0.25 * (ideal - random_quality)
