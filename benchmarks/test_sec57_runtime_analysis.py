"""§5.7: runtime analysis — solver scalability, predictor accuracy, variant
switching overhead and cluster utilisation.

Paper claims reproduced here:

* the allocation solver stays well under 100 ms even for clusters of tens
  of GPUs;
* the workload-distribution predictor reaches very low L2 error with a
  1000-prompt look-back window;
* Argus switches variants far less than Proteus (which reloads models on
  27-42% of load changes) because AC level changes are free;
* Argus's utilisation on a fixed cluster is far higher than peak
  provisioning (static over-provisioning for the peak).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.helpers import BENCH_TRACE_MINUTES, bench_config, print_table
from repro.core.solver import AllocationSolver
from repro.core.predictor import WorkloadDistributionPredictor
from repro.experiments.runner import build_system
from repro.models.zoo import ModelZoo, Strategy


def test_sec57_solver_scalability(benchmark):
    zoo = ModelZoo()
    peak = np.array([l.peak_throughput_qpm for l in zoo.levels(Strategy.AC)])
    quality = np.array([21.0, 20.8, 20.4, 19.7, 18.4, 16.5])
    solver = AllocationSolver()
    cluster_sizes = (8, 16, 32, 64)

    def solve_all():
        timings = []
        for size in cluster_sizes:
            target = 0.7 * peak.max() * size
            start = time.perf_counter()
            plan = solver.solve(target, quality, peak, num_workers=size)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            timings.append(
                {
                    "cluster_size": size,
                    "target_qpm": target,
                    "solve_time_ms": elapsed_ms,
                    "feasible": plan.feasible,
                }
            )
        return timings

    timings = benchmark(solve_all)
    print_table("§5.7: ILP/allocation solver scalability", timings)
    for row in timings:
        assert row["feasible"]
        assert row["solve_time_ms"] < 100.0


def test_sec57_predictor_accuracy(benchmark):
    rng = np.random.default_rng(0)
    truth = np.array([0.04, 0.10, 0.16, 0.32, 0.26, 0.12])

    def run():
        predictor = WorkloadDistributionPredictor(num_levels=6, lookback=1000)
        predictor.observe_many(rng.choice(6, size=8000, p=truth).tolist())
        return predictor.prediction_error(truth)

    error = benchmark(run)
    print(f"\n§5.7: workload-distribution predictor L2 error = {error:.4f}")
    assert error < 0.05


@pytest.fixture(scope="module")
def switching_runs(runner, trace_library, training_dataset):
    trace = trace_library.bursty(duration_minutes=BENCH_TRACE_MINUTES)
    outcomes = {}
    for name in ("argus", "proteus", "clipper-ha"):
        system = build_system(name, config=bench_config(), training_dataset=training_dataset)
        outcomes[name] = (runner.run(system, trace), system)
    return outcomes


def test_sec57_switching_overhead_and_utilization(benchmark, switching_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, (result, system) in switching_runs.items():
        rows.append(
            {
                "system": result.summary.system,
                "model_loads": result.summary.model_loads,
                "served_qpm": result.summary.mean_served_qpm,
                "utilization": result.summary.cluster_utilization,
                "slo_violation_ratio": result.summary.slo_violation_ratio,
            }
        )
    print_table("§5.7: variant-switching overhead and cluster utilisation", rows)

    argus_row = next(r for r in rows if r["system"] == "Argus")
    proteus_row = next(r for r in rows if r["system"] == "Proteus")
    clipper_row = next(r for r in rows if r["system"] == "Clipper-HA")

    # Argus changes AC levels for free: no model loads at all, while Proteus
    # reloads models as the load fluctuates.
    assert argus_row["model_loads"] == 0
    assert proteus_row["model_loads"] > 10
    # Argus keeps the fixed cluster busy (the paper reports 71-91%
    # utilisation vs 37-60% for peak provisioning); Clipper-HA is saturated
    # but fails its SLOs, which is the wrong kind of "utilisation".
    assert argus_row["utilization"] > 0.5
    assert argus_row["slo_violation_ratio"] < clipper_row["slo_violation_ratio"]
