"""Fig. 1: an SD-XL-only cluster cannot meet peak load on real traces.

The paper shows that 8 A100s running SD-XL (Clipper-HA style, no
approximation) fall short of the offered load during the peaks of both the
Twitter trace and the SysX production trace.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import BENCH_TRACE_MINUTES, bench_config, print_series, print_table
from repro.baselines.clipper import ClipperSystem


def _run(runner, trace):
    system = ClipperSystem(mode="HA", config=bench_config())
    return runner.run(system, trace), system


def test_fig01_sdxl_cluster_misses_peak_load(benchmark, runner, trace_library):
    traces = {
        "twitter": trace_library.twitter_like(duration_minutes=BENCH_TRACE_MINUTES),
        "sysx": trace_library.sysx_like(duration_minutes=BENCH_TRACE_MINUTES),
    }
    results = {}

    def run_all():
        for name, trace in traces.items():
            results[name] = _run(runner, trace)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, (result, _system) in results.items():
        offered = np.array(result.offered_qpm_series[: traces[name].duration_minutes])
        served = np.array(result.served_qpm_series[: traces[name].duration_minutes])
        peak_window = offered > np.percentile(offered, 75)
        rows.append(
            {
                "trace": name,
                "offered_peak_qpm": float(offered.max()),
                "served_at_peak_qpm": float(served[peak_window].mean()),
                "offered_at_peak_qpm": float(offered[peak_window].mean()),
                "slo_violation_ratio": result.summary.slo_violation_ratio,
            }
        )
        print_series(
            f"Fig. 1 ({name}): offered vs served QPM (SD-XL only)",
            {"offered": offered, "served": served},
        )
    print_table("Fig. 1 summary: SD-XL-only cluster vs peak load", rows)

    for row in rows:
        # The fixed SD-XL cluster serves well below the offered peak and
        # accumulates SLO violations, motivating approximation.
        assert row["served_at_peak_qpm"] < 0.95 * row["offered_at_peak_qpm"]
        assert row["slo_violation_ratio"] > 0.2
