"""Fig. 9: average PickScore of optimal-model assignment vs random
assignment, per level, plus PickScore-per-latency.

The paper reports e.g. SD-Small at 17.4 under random assignment vs 20.6 when
only prompts for which it is the optimal model are routed to it.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import print_table
from repro.models.zoo import ModelZoo, Strategy
from repro.quality.optimal import OptimalModelSelector


def test_fig09_optimal_vs_random_assignment(benchmark, pickscore, eval_prompts):
    zoo = ModelZoo()
    selector = OptimalModelSelector(pickscore)
    prompts = eval_prompts[:1500]

    def compute():
        results = {}
        for strategy in (Strategy.SM, Strategy.AC):
            affinities = [selector.optimal_rank(p, strategy) for p in prompts]
            per_level = []
            for rank, level in enumerate(zoo.levels(strategy)):
                random_scores = [pickscore.score(p, strategy, rank) for p in prompts]
                matched = [
                    pickscore.score(p, strategy, rank)
                    for p, affinity in zip(prompts, affinities)
                    if affinity == rank
                ]
                per_level.append(
                    {
                        "level": level.name,
                        "random_assignment": float(np.mean(random_scores)),
                        "optimal_only": float(np.mean(matched)) if matched else None,
                        "pickscore_per_latency_random": float(
                            np.mean(random_scores) / level.latency_s
                        ),
                        "num_matched_prompts": len(matched),
                    }
                )
            results[strategy] = per_level
        return results

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    for strategy, rows in results.items():
        print_table(f"Fig. 9 ({strategy.value}): optimal vs random assignment", rows)

    for strategy, rows in results.items():
        most_approx = rows[-1]
        # Routing only affinity-matched prompts to the most approximate level
        # is clearly better than random assignment to it (paper: 20.6 vs 17.4).
        assert most_approx["optimal_only"] is not None
        assert most_approx["optimal_only"] > most_approx["random_assignment"] + 1.0
        # Faster levels deliver more PickScore per second of GPU time.
        assert (
            rows[-1]["pickscore_per_latency_random"]
            > rows[0]["pickscore_per_latency_random"]
        )
