"""Fig. 19: classifier training loss vs achieved PickScore.

More training epochs reduce the loss and increase the PickScore realised by
routing prompts to the classifier's predicted levels (paper: loss 1.0 -> 0.1
raises PickScore 18.0 -> 20.6).
"""

from __future__ import annotations

from benchmarks.helpers import print_table
from repro.classifier.trainer import ClassifierTrainer
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.quality.pickscore import PickScoreModel


def test_fig19_loss_vs_pickscore(benchmark):
    pickscore = PickScoreModel(seed=0)
    trainer = ClassifierTrainer(pickscore)
    train_prompts = PromptDataset.synthetic(count=1200, seed=41).prompts
    eval_prompts = PromptDataset.synthetic(count=600, seed=42).prompts

    def compute():
        return trainer.loss_vs_pickscore_curve(
            train_prompts,
            Strategy.AC,
            epoch_checkpoints=(1, 2, 4, 8, 16, 32),
            eval_prompts=eval_prompts,
            seed=0,
        )

    curve = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("Fig. 19: training budget vs loss vs achieved PickScore", curve)

    first, last = curve[0], curve[-1]
    # Loss decreases substantially with training...
    assert last["train_loss"] < 0.75 * first["train_loss"]
    # ...validation accuracy improves...
    assert last["validation_accuracy"] >= first["validation_accuracy"]
    # ...and the PickScore achieved by classifier routing improves.
    assert last["mean_pickscore"] >= first["mean_pickscore"]
