"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's evaluation
and prints the rows/series it produces, so running
``pytest benchmarks/ --benchmark-only -s`` doubles as the reproduction log.
EXPERIMENTS.md records the paper-vs-measured comparison for each experiment.
"""

from __future__ import annotations

from repro.core.config import ArgusConfig
from repro.prompts.dataset import PromptDataset

#: Evaluation-scale knobs.  The paper runs 800-minute traces on real GPUs;
#: benchmark runs use shorter windows so the full suite finishes in minutes
#: while preserving the load *shape* (trough, peak, bursts).
BENCH_TRACE_MINUTES = 90
BENCH_DATASET_SIZE = 1500
BENCH_TRAINING_PROMPTS = 800
BENCH_SEED = 0


def bench_config(**overrides) -> ArgusConfig:
    """The 8-worker A100 configuration used across benchmarks."""
    defaults = dict(
        num_workers=8,
        classifier_training_prompts=BENCH_TRAINING_PROMPTS,
        profiling_prompts=400,
        classifier_epochs=12,
        seed=BENCH_SEED,
    )
    defaults.update(overrides)
    return ArgusConfig(**defaults)


def bench_training_dataset() -> PromptDataset:
    """Shared classifier-training dataset (the DiffusionDB stand-in)."""
    return PromptDataset.synthetic(count=BENCH_TRAINING_PROMPTS, seed=BENCH_SEED + 101)


def print_table(title: str, rows: list[dict]) -> None:
    """Print a list of dict rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns))


def print_series(title: str, series: dict) -> None:
    """Print named numeric series (downsampled) for figure-style benchmarks."""
    print(f"\n=== {title} ===")
    for name, values in series.items():
        values = list(values)
        step = max(1, len(values) // 16)
        sampled = [values[i] for i in range(0, len(values), step)]
        rendered = ", ".join(_fmt(v) for v in sampled)
        print(f"{name:>28s}: [{rendered}]")


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
