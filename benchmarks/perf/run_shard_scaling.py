"""Shard-scaling benchmark: one scenario, sequential vs N shard processes.

Writes a ``BENCH_*.json`` with one leg per shard count (wall-clock, arrival
/completion totals, SLO health) plus cross-leg correctness checks:

* every leg must see the identical arrival total (the shard slices union to
  the sequential stream), and
* the ``shards=1`` leg must produce a RunSummary digest hex-identical to the
  plain sequential runner — sharding is opt-in risk only at N > 1.

The headline claim is the 8-shard wall-clock speedup on the ``fig16-xl``
ten-million-request trace.  On a single-core host that speedup is *work
removed*, not parallel slack: each shard's join-shortest-expected-wait route
scan covers only its fleet partition (W/N workers instead of W), which is
the O(W) term sharding exists to split.

Three control-plane benchmarks ride along:

* ``shard_autoscale`` — the ``sharded-autoscale`` scenario under per-shard
  autoscalers and the coordinator budget broker, checked for repeat
  determinism, sync-window invariance, and the global worker budget
  holding at every barrier;
* ``tenant_partition`` — coordinator-side tenant stream slicing vs the old
  per-shard full-stream filter walk (the O(shards x stream) term the
  partitioner removes), checked for identical per-shard slices; and
* ``shard_stealing`` — the skewed ``sharded-steal`` scenario with cross-
  shard work stealing off vs on; the "speedup" is the hot tenant's p99
  ratio, checked for conserved arrivals and an actual p99 drop.

Usage::

    PYTHONPATH=src:. python benchmarks/perf/run_shard_scaling.py \
        --preset small --output BENCH_PR7.json         # the checked-in run
    PYTHONPATH=src:. python benchmarks/perf/run_shard_scaling.py \
        --preset small --output BENCH_shard_ci.json    # CI smoke (~3 min)

Exits non-zero when a correctness check fails; wall-clock speedups are
reported, not gated (CI runners are too noisy to gate a wall-clock ratio);
``check_regression.py`` gates the per-benchmark ``speedup`` ratios against
the checked-in baseline with a generous tolerance.
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import platform
import sys
import time

import numpy as np

from repro.scenarios.registry import get_scenario
from repro.scenarios.runtime import build_config, build_stream, run_scenario
from repro.simulation.shard import (
    _partition_arrivals,
    _tenant_sliced_stream,
    plan_shards,
    run_scenario_sharded,
)

#: Shard counts per preset.  The small preset rides the 4-worker SMALL_FLEET,
#: so it stops at 4; the full preset is the checked-in fig16-xl sweep.
SHARD_COUNTS = {"small": (1, 2, 4), "full": (1, 2, 4, 8)}


def _digest(run) -> str:
    return hashlib.sha256(
        json.dumps(run.summary.as_dict(), sort_keys=True, default=str).encode()
    ).hexdigest()


def _run_leg(scenario: str, preset: str, seed: int, shards: int) -> dict:
    gc.collect()
    start = time.perf_counter()
    run = run_scenario_sharded(scenario, preset=preset, seed=seed, shards=shards)
    wall_s = time.perf_counter() - start
    summary = run.summary
    return {
        "shards": shards,
        "wall_s": wall_s,
        "arrivals": summary.total_arrivals,
        "completions": summary.total_completions,
        "requests_per_s": summary.total_arrivals / wall_s,
        "slo_violation_ratio": summary.slo_violation_ratio,
        "mean_relative_quality": summary.mean_relative_quality,
        "summary_digest": _digest(run),
    }


def _timed_sharded(scenario: str, preset: str, seed: int, shards: int, **kw):
    gc.collect()
    start = time.perf_counter()
    run = run_scenario_sharded(scenario, preset=preset, seed=seed, shards=shards, **kw)
    return run, time.perf_counter() - start


def _bench_autoscale(preset: str, seed: int) -> dict:
    """Brokered per-shard autoscaling: determinism, window invariance, budget."""
    scenario = "sharded-autoscale"
    failures: list[str] = []
    seq, seq_wall = _timed_sharded(scenario, preset, seed, shards=1)
    legs = [
        {
            "shards": 1,
            "wall_s": seq_wall,
            "arrivals": seq.summary.total_arrivals,
            "summary_digest": _digest(seq),
        }
    ]
    for shards in (2, 4):
        run, wall = _timed_sharded(scenario, preset, seed, shards=shards)
        autoscale = run.extras["sharding"]["autoscale"]
        budget = autoscale["max_workers"]
        over = [
            entry
            for entry in run.extras["sharding"]["barriers"]
            if entry["in_fleet"] > budget or entry["committed_workers"] > budget
        ]
        if over:
            failures.append(
                f"shards={shards}: {len(over)} barrier(s) exceed the "
                f"{budget}-worker global budget"
            )
        repeat, _ = _timed_sharded(scenario, preset, seed, shards=shards)
        if _digest(repeat) != _digest(run):
            failures.append(f"shards={shards}: repeat run digest differs")
        # Grant/apply happens only on the fixed epoch grid, so halving or
        # quadrupling the barrier window must not move a single request.
        narrow, _ = _timed_sharded(
            scenario, preset, seed, shards=shards, sync_window_s=30.0
        )
        wide, _ = _timed_sharded(
            scenario, preset, seed, shards=shards, sync_window_s=120.0
        )
        if _digest(narrow) != _digest(wide):
            failures.append(f"shards={shards}: sync-window width changed the summary")
        if (
            narrow.extras["sharding"]["autoscale"]["grants"]
            != wide.extras["sharding"]["autoscale"]["grants"]
        ):
            failures.append(f"shards={shards}: sync-window width changed the grants")
        legs.append(
            {
                "shards": shards,
                "wall_s": wall,
                "arrivals": run.summary.total_arrivals,
                "summary_digest": _digest(run),
                "workers_granted": sum(
                    g["granted"] for g in autoscale["grants"] if g["action"] == "scale_out"
                ),
                "scale_denials": autoscale["denied_requests"],
                "committed_workers": autoscale["committed"],
                "speedup_vs_sequential": seq_wall / wall,
            }
        )
    if len({leg["arrivals"] for leg in legs}) != 1:
        failures.append("arrival totals diverge across autoscaled legs")
    return {
        "legs": legs,
        "checks_failed": failures,
        "speedup": legs[-1]["speedup_vs_sequential"],
        "results_match": not failures,
    }


def _bench_tenant_partition(preset: str, seed: int, repeats: int = 3) -> dict:
    """Coordinator tenant-stream slicing vs the per-shard full-stream walk."""
    scenario = get_scenario("sharded-steal")
    preset_spec = scenario.preset(preset)
    # Four single-tenant shards make the removed O(shards x stream) term
    # visible; the checked-in two-tenant scenario would cap the sweep at 2.
    tenants = [
        {"name": f"t{i}", "traffic_share": 0.25, "extra_qpm": [60.0] * 8}
        for i in range(4)
    ]
    config = build_config(
        scenario, preset_spec, seed, extra={"tenants": tenants, "shards": 4}
    )
    trace = scenario.trace.build(seed=seed, **preset_spec.trace_params)
    plan = plan_shards(config, trace=trace)
    stream = build_stream(scenario, preset_spec, config, trace, seed)

    def _key(timed):
        return (timed.arrival_time_s, timed.prompt.tenant, timed.prompt.text)

    legacy_s = sliced_s = float("inf")
    legacy_slices = sliced_slices = None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        legacy_slices = [
            [_key(t) for t in stream if t.prompt.tenant in spec.tenant_names]
            for spec in plan.shards
        ]
        legacy_s = min(legacy_s, time.perf_counter() - start)
        gc.collect()
        start = time.perf_counter()
        descriptors = _partition_arrivals(stream, plan)
        sliced_slices = [
            [_key(t) for t in _tenant_sliced_stream(stream, d["indices"])]
            for d in descriptors
        ]
        sliced_s = min(sliced_s, time.perf_counter() - start)
    failures: list[str] = []
    if legacy_slices != sliced_slices:
        failures.append("sliced tenant streams differ from the filter-walk slices")
    return {
        "shards": len(plan.shards),
        "stream_requests": sum(len(s) for s in legacy_slices),
        "filter_walk_s": legacy_s,
        "sliced_s": sliced_s,
        "checks_failed": failures,
        "speedup": legacy_s / sliced_s,
        "results_match": not failures,
    }


def _bench_stealing(preset: str, seed: int) -> dict:
    """Cross-shard work stealing off vs on: hot-tenant p99 ratio."""
    scenario = get_scenario("sharded-steal")
    on, on_wall = _timed_sharded(scenario, preset, seed, shards=2)
    # The registry scenario ships with stealing on; the off leg disables it.
    off_run, off_wall = _timed_sharded(
        _with_config(scenario, {"shard_work_stealing": False}), preset, seed, shards=2
    )

    def _hot(run):
        return next(t for t in run.summary.tenants if t.name == "hot")

    failures: list[str] = []
    stealing = on.extras["sharding"].get("stealing", {})
    if not stealing.get("stolen_total"):
        failures.append("stealing-on run migrated no work")
    if on.summary.total_arrivals != off_run.summary.total_arrivals:
        failures.append("arrival totals differ between stealing legs")
    p99_off = _hot(off_run).p99_latency_s
    p99_on = _hot(on).p99_latency_s
    if not p99_on < p99_off:
        failures.append(f"hot p99 did not drop: off={p99_off:.1f}s on={p99_on:.1f}s")
    return {
        "shards": 2,
        "hot_p99_off_s": p99_off,
        "hot_p99_on_s": p99_on,
        "stolen_total": stealing.get("stolen_total", 0),
        "steal_events": len(stealing.get("events", ())),
        "wall_off_s": off_wall,
        "wall_on_s": on_wall,
        "checks_failed": failures,
        "speedup": p99_off / p99_on if p99_on else 0.0,
        "results_match": not failures,
    }


def _with_config(scenario, overrides: dict):
    """A copy of ``scenario`` with extra ArgusConfig overrides."""
    payload = scenario.to_dict()
    payload["config"] = {**payload.get("config", {}), **overrides}
    return type(scenario).from_dict(payload)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="fig16-xl")
    parser.add_argument("--preset", choices=sorted(SHARD_COUNTS), default="full")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_PR7.json")
    parser.add_argument(
        "--shards",
        default=None,
        help="comma-separated shard counts overriding the preset's sweep",
    )
    parser.add_argument(
        "--hex-check",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "re-run the sequential runner and require the shards=1 leg to be "
            "hex-identical; 'auto' enables it on the small preset only (on "
            "the 10M-request full preset the extra sequential run would "
            "double the benchmark, and the tier-1 suite pins the same "
            "identity)"
        ),
    )
    args = parser.parse_args(argv)
    hex_check = args.hex_check == "on" or (
        args.hex_check == "auto" and args.preset == "small"
    )
    counts = (
        tuple(int(c) for c in args.shards.split(","))
        if args.shards
        else SHARD_COUNTS[args.preset]
    )

    legs: list[dict] = []
    for shards in counts:
        print(f"[{args.scenario}/{args.preset}] shards={shards} ...", flush=True)
        leg = _run_leg(args.scenario, args.preset, args.seed, shards)
        baseline = legs[0]["wall_s"] if legs else leg["wall_s"]
        leg["speedup_vs_sequential"] = baseline / leg["wall_s"]
        legs.append(leg)
        print(
            f"[{args.scenario}/{args.preset}] shards={shards} done: "
            f"wall={leg['wall_s']:.1f}s n={leg['arrivals']} "
            f"viol={leg['slo_violation_ratio']:.4f} "
            f"speedup={leg['speedup_vs_sequential']:.2f}x",
            flush=True,
        )

    failures: list[str] = []
    arrival_totals = {leg["arrivals"] for leg in legs}
    if len(arrival_totals) != 1:
        failures.append(f"arrival totals diverge across legs: {sorted(arrival_totals)}")
    if hex_check and counts and counts[0] == 1:
        print("checking shards=1 hex-identity against the sequential runner ...", flush=True)
        sequential = run_scenario(args.scenario, preset=args.preset, seed=args.seed)
        if _digest(sequential) != legs[0]["summary_digest"]:
            failures.append("shards=1 summary digest differs from sequential runner")

    print("[shard_autoscale] brokered autoscaling sweep ...", flush=True)
    autoscale = _bench_autoscale(args.preset, args.seed)
    print(
        f"[shard_autoscale] done: speedup={autoscale['speedup']:.2f}x "
        f"checks={'ok' if autoscale['results_match'] else autoscale['checks_failed']}",
        flush=True,
    )
    print("[tenant_partition] stream-slicing microbench ...", flush=True)
    partition = _bench_tenant_partition(args.preset, args.seed)
    print(
        f"[tenant_partition] done: filter-walk {partition['filter_walk_s']:.3f}s vs "
        f"sliced {partition['sliced_s']:.3f}s = {partition['speedup']:.2f}x",
        flush=True,
    )
    print("[shard_stealing] skewed two-tenant off/on ...", flush=True)
    stealing = _bench_stealing(args.preset, args.seed)
    print(
        f"[shard_stealing] done: hot p99 {stealing['hot_p99_off_s']:.1f}s -> "
        f"{stealing['hot_p99_on_s']:.1f}s ({stealing['stolen_total']} stolen)",
        flush=True,
    )

    claims = {}
    by_count = {leg["shards"]: leg for leg in legs}
    for shards, leg in by_count.items():
        if shards > 1:
            claims[f"shard_scaling_speedup_{shards}"] = leg["speedup_vs_sequential"]
    claims["tenant_partition_speedup"] = partition["speedup"]
    claims["stealing_hot_p99_ratio"] = stealing["speedup"]

    # `speedup` and `results_match` make each entry legible to
    # check_regression.py's standard ratio/consistency gate.
    benchmarks = {
        "shard_scaling": {
            "legs": legs,
            "checks_failed": failures,
            "speedup": legs[-1]["speedup_vs_sequential"],
            "results_match": not failures,
        },
        "shard_autoscale": autoscale,
        "tenant_partition": partition,
        "shard_stealing": stealing,
    }
    payload = {
        "meta": {
            "pr": "PR7",
            "scenario": args.scenario,
            "preset": args.preset,
            "seed": args.seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "benchmarks": benchmarks,
        "claims": claims,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    all_failures = failures + [
        f"{name}: {check}"
        for name, bench in benchmarks.items()
        for check in bench.get("checks_failed", ())
        if name != "shard_scaling"
    ]
    if all_failures:
        print("FAILED: " + "; ".join(all_failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
