"""Shard-scaling benchmark: one scenario, sequential vs N shard processes.

Writes a ``BENCH_*.json`` with one leg per shard count (wall-clock, arrival
/completion totals, SLO health) plus cross-leg correctness checks:

* every leg must see the identical arrival total (the shard slices union to
  the sequential stream), and
* the ``shards=1`` leg must produce a RunSummary digest hex-identical to the
  plain sequential runner — sharding is opt-in risk only at N > 1.

The headline claim is the 8-shard wall-clock speedup on the ``fig16-xl``
ten-million-request trace.  On a single-core host that speedup is *work
removed*, not parallel slack: each shard's join-shortest-expected-wait route
scan covers only its fleet partition (W/N workers instead of W), which is
the O(W) term sharding exists to split.

Usage::

    PYTHONPATH=src:. python benchmarks/perf/run_shard_scaling.py \
        --preset full --output BENCH_PR6.json          # the checked-in run
    PYTHONPATH=src:. python benchmarks/perf/run_shard_scaling.py \
        --preset small --output BENCH_shard_ci.json    # CI smoke (~1 min)

Exits non-zero when a correctness check fails; the speedup itself is
reported, not gated (CI runners are too noisy to gate a wall-clock ratio).
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import platform
import sys
import time

import numpy as np

from repro.scenarios.runtime import run_scenario
from repro.simulation.shard import run_scenario_sharded

#: Shard counts per preset.  The small preset rides the 4-worker SMALL_FLEET,
#: so it stops at 4; the full preset is the checked-in fig16-xl sweep.
SHARD_COUNTS = {"small": (1, 2, 4), "full": (1, 2, 4, 8)}


def _digest(run) -> str:
    return hashlib.sha256(
        json.dumps(run.summary.as_dict(), sort_keys=True, default=str).encode()
    ).hexdigest()


def _run_leg(scenario: str, preset: str, seed: int, shards: int) -> dict:
    gc.collect()
    start = time.perf_counter()
    run = run_scenario_sharded(scenario, preset=preset, seed=seed, shards=shards)
    wall_s = time.perf_counter() - start
    summary = run.summary
    return {
        "shards": shards,
        "wall_s": wall_s,
        "arrivals": summary.total_arrivals,
        "completions": summary.total_completions,
        "requests_per_s": summary.total_arrivals / wall_s,
        "slo_violation_ratio": summary.slo_violation_ratio,
        "mean_relative_quality": summary.mean_relative_quality,
        "summary_digest": _digest(run),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="fig16-xl")
    parser.add_argument("--preset", choices=sorted(SHARD_COUNTS), default="full")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_PR6.json")
    parser.add_argument(
        "--shards",
        default=None,
        help="comma-separated shard counts overriding the preset's sweep",
    )
    parser.add_argument(
        "--hex-check",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "re-run the sequential runner and require the shards=1 leg to be "
            "hex-identical; 'auto' enables it on the small preset only (on "
            "the 10M-request full preset the extra sequential run would "
            "double the benchmark, and the tier-1 suite pins the same "
            "identity)"
        ),
    )
    args = parser.parse_args(argv)
    hex_check = args.hex_check == "on" or (
        args.hex_check == "auto" and args.preset == "small"
    )
    counts = (
        tuple(int(c) for c in args.shards.split(","))
        if args.shards
        else SHARD_COUNTS[args.preset]
    )

    legs: list[dict] = []
    for shards in counts:
        print(f"[{args.scenario}/{args.preset}] shards={shards} ...", flush=True)
        leg = _run_leg(args.scenario, args.preset, args.seed, shards)
        baseline = legs[0]["wall_s"] if legs else leg["wall_s"]
        leg["speedup_vs_sequential"] = baseline / leg["wall_s"]
        legs.append(leg)
        print(
            f"[{args.scenario}/{args.preset}] shards={shards} done: "
            f"wall={leg['wall_s']:.1f}s n={leg['arrivals']} "
            f"viol={leg['slo_violation_ratio']:.4f} "
            f"speedup={leg['speedup_vs_sequential']:.2f}x",
            flush=True,
        )

    failures: list[str] = []
    arrival_totals = {leg["arrivals"] for leg in legs}
    if len(arrival_totals) != 1:
        failures.append(f"arrival totals diverge across legs: {sorted(arrival_totals)}")
    if hex_check and counts and counts[0] == 1:
        print("checking shards=1 hex-identity against the sequential runner ...", flush=True)
        sequential = run_scenario(args.scenario, preset=args.preset, seed=args.seed)
        if _digest(sequential) != legs[0]["summary_digest"]:
            failures.append("shards=1 summary digest differs from sequential runner")

    claims = {}
    by_count = {leg["shards"]: leg for leg in legs}
    for shards, leg in by_count.items():
        if shards > 1:
            claims[f"shard_scaling_speedup_{shards}"] = leg["speedup_vs_sequential"]

    payload = {
        "meta": {
            "pr": "PR6",
            "scenario": args.scenario,
            "preset": args.preset,
            "seed": args.seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        # `speedup` (widest sweep point) and `results_match` make this entry
        # legible to check_regression.py's standard ratio/consistency gate.
        "benchmarks": {
            "shard_scaling": {
                "legs": legs,
                "checks_failed": failures,
                "speedup": legs[-1]["speedup_vs_sequential"],
                "results_match": not failures,
            }
        },
        "claims": claims,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    if failures:
        print("FAILED: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
