"""Seed-faithful reference implementations of the four hot paths.

These are the pre-PR-3 implementations, preserved verbatim so the perf
harness can time "before" and "after" in the same process on the same
machine, and so the equivalence tests can check that the optimised paths
still produce the same observable results.  They are *not* used by the
serving stack itself.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.requests import CompletedRequest
from repro.core.solver import AllocationSolver
from repro.metrics.collector import ServedSample
from repro.metrics.slo import SloPolicy
from repro.simulation.clock import Clock
from repro.simulation.randomness import RandomStreams, stable_hash

# --------------------------------------------------------------------------- #
# 1. Vector search: per-query matrix copy + full argsort (seed vectordb)
# --------------------------------------------------------------------------- #


def legacy_flat_search(db, query: np.ndarray, top_k: int = 1):
    """Seed-shaped flat search against an (optimised) VectorDatabase.

    Reproduces the original cost profile: materialise the candidate index
    array, fancy-index a copy of the whole matrix, divide by the norm
    products and full-``argsort`` the similarities.
    """
    query = np.asarray(query, dtype=np.float64).reshape(-1)
    count = len(db._keys)
    if count == 0:
        return []
    norms = getattr(db, "_legacy_norms", None)
    if norms is None or len(norms) < db._capacity:
        # Seed maintained norms incrementally at insert time; rebuilding it
        # outside the timed region keeps the comparison fair.
        norms = np.linalg.norm(db._matrix, axis=1)
        norms[norms == 0] = 1.0
        db._legacy_norms = norms
    candidate_indices = np.arange(count)
    matrix = db._matrix[candidate_indices]
    norms = norms[candidate_indices]
    query_norm = max(float(np.linalg.norm(query)), 1e-12)
    sims = (matrix @ query) / (norms * query_norm)
    order = np.argsort(-sims)[:top_k]
    return [
        (db._keys[int(candidate_indices[int(position)])], float(sims[int(position)]))
        for position in order
    ]


# --------------------------------------------------------------------------- #
# 2. Metrics: the seed object-list collector
# --------------------------------------------------------------------------- #


@dataclass
class LegacyMinuteStats:
    minute: int
    offered_qpm: float = 0.0
    arrivals: int = 0
    completions: int = 0
    slo_violations: int = 0
    pickscores: list[float] = field(default_factory=list)
    relative_qualities: list[float] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    fleet_workers: float = 0.0
    fleet_by_gpu: dict[str, float] = field(default_factory=dict)

    @property
    def served_qpm(self) -> float:
        return float(self.completions)

    @property
    def violation_ratio(self) -> float:
        if self.completions == 0:
            return 0.0
        return self.slo_violations / self.completions

    @property
    def mean_pickscore(self) -> float:
        return float(np.mean(self.pickscores)) if self.pickscores else 0.0

    @property
    def mean_relative_quality(self) -> float:
        return float(np.mean(self.relative_qualities)) if self.relative_qualities else 0.0


class LegacyMetricsCollector:
    """The seed per-request object-list collector (pre-columnar)."""

    def __init__(self, slo: SloPolicy | None = None) -> None:
        self.slo = slo or SloPolicy()
        self.samples: list[ServedSample] = []
        self._minutes: dict[int, LegacyMinuteStats] = {}
        self._arrivals_by_minute: dict[int, int] = defaultdict(int)
        self.dropped_requests = 0

    def record_arrival(self, arrival_time_s: float, tenant: str = "") -> None:
        # ``tenant`` is accepted for interface parity with the live
        # collector; the seed implementation predates tenancy and the
        # harness only runs it on anonymous workloads.
        self._arrivals_by_minute[int(arrival_time_s // 60)] += 1

    def record_drop(self, tenant: str = "") -> None:
        self.dropped_requests += 1

    def record_completion(
        self, completed: CompletedRequest, pickscore: float, best_pickscore: float
    ) -> ServedSample:
        sample = ServedSample(completed=completed, pickscore=pickscore, best_pickscore=best_pickscore)
        self.samples.append(sample)
        minute = int(completed.completion_time_s // 60)
        stats = self._minutes.setdefault(minute, LegacyMinuteStats(minute=minute))
        stats.completions += 1
        stats.pickscores.append(pickscore)
        stats.relative_qualities.append(sample.relative_quality)
        stats.latencies.append(sample.latency_s)
        if self.slo.is_violation(sample.latency_s):
            stats.slo_violations += 1
        return sample

    def minute_series(self, offered=None, fleet=None) -> list[LegacyMinuteStats]:
        minutes = set(self._minutes) | set(self._arrivals_by_minute)
        if offered:
            minutes |= set(offered)
        if fleet:
            minutes |= set(fleet)
        series = []
        for minute in sorted(minutes):
            stats = self._minutes.get(minute, LegacyMinuteStats(minute=minute))
            stats.arrivals = self._arrivals_by_minute.get(minute, 0)
            stats.offered_qpm = (
                offered.get(minute, float(stats.arrivals)) if offered else float(stats.arrivals)
            )
            if fleet and minute in fleet:
                stats.fleet_workers = fleet[minute].mean_workers
                stats.fleet_by_gpu = dict(fleet[minute].by_gpu)
            series.append(stats)
        return series

    @property
    def total_completions(self) -> int:
        return len(self.samples)

    @property
    def total_arrivals(self) -> int:
        return sum(self._arrivals_by_minute.values())

    def slo_violation_ratio(self) -> float:
        if not self.samples:
            return 0.0
        return self.slo.violation_ratio([s.latency_s for s in self.samples])

    def effective_accuracy(self) -> float:
        within = [s.pickscore for s in self.samples if not self.slo.is_violation(s.latency_s)]
        return float(np.mean(within)) if within else 0.0

    def mean_pickscore(self) -> float:
        return float(np.mean([s.pickscore for s in self.samples])) if self.samples else 0.0

    def mean_relative_quality(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([s.relative_quality for s in self.samples]))

    def latency_percentile(self, percentile: float) -> float:
        if not self.samples:
            return 0.0
        return float(np.percentile([s.latency_s for s in self.samples], percentile))

    def relative_qualities(self) -> list[float]:
        return [s.relative_quality for s in self.samples]


# --------------------------------------------------------------------------- #
# 3. Solver: scalar enumeration, no memoisation
# --------------------------------------------------------------------------- #


class LegacySolver(AllocationSolver):
    """Seed solver: per-composition Python fill loop, no plan cache."""

    def __init__(self, enumerate_limit: int = 5_000) -> None:
        super().__init__(enumerate_limit=enumerate_limit, cache_size=0)

    def _best_counts_enumerated(self, target_qpm, quality, peak_qpm, num_workers):
        num_levels = len(quality)
        return self._enumerate_best_counts_scalar(
            target_qpm,
            quality,
            num_workers,
            lambda counts: [counts[l] * peak_qpm[l] for l in range(num_levels)],
        )


# --------------------------------------------------------------------------- #
# 4. Engine: order=True dataclass events, O(n) pending scan
# --------------------------------------------------------------------------- #


@dataclass(order=True)
class LegacyEvent:
    time: float
    sequence: int
    callback: Callable = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class LegacySimulationEngine:
    """The seed engine: heap of comparable Event dataclasses."""

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self.clock = Clock(start=start_time)
        self.random = RandomStreams(seed=seed)
        self._heap: list[LegacyEvent] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._halted = False

    def schedule_at(self, time, callback, name: str = ""):
        if time < self.clock.time:
            raise ValueError(
                f"cannot schedule event in the past: {time:.6f} < {self.clock.time:.6f}"
            )
        event = LegacyEvent(
            time=float(time), sequence=next(self._sequence), callback=callback, name=name
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay, callback, name: str = ""):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.clock.time + delay, callback, name=name)

    def schedule_every(self, interval, callback, name: str = "", start_delay=None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        first_delay = interval if start_delay is None else start_delay

        def tick(engine) -> None:
            callback(engine)
            engine.schedule_in(interval, tick, name=name)

        self.schedule_in(first_delay, tick, name=name)

    def halt(self) -> None:
        self._halted = True

    def step(self) -> bool:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback(self)
            self._events_processed += 1
            return True
        return False

    def run(self, until=None, max_events=None) -> int:
        processed = 0
        self._halted = False
        while self._heap and not self._halted:
            if max_events is not None and processed >= max_events:
                break
            next_time = self._peek_time()
            if until is not None and next_time is not None and next_time > until:
                break
            if not self.step():
                break
            processed += 1
        if until is not None and until > self.clock.time:
            self.clock.advance_to(until)
        return processed

    def _peek_time(self):
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    @property
    def now(self) -> float:
        return self.clock.time

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def rng(self, name: str):
        return self.random.stream(name)


# --------------------------------------------------------------------------- #
# 5. Network + embedder scan paths
# --------------------------------------------------------------------------- #


def legacy_condition_at(network, time_s: float):
    """Seed condition lookup: linear scan over every scheduled window."""
    current = network._default
    for window in network._windows:
        if window.contains(time_s):
            current = window.condition
    return current


def legacy_embed(embedder, prompt) -> np.ndarray:
    """Seed embed: re-hash the full prompt text on every lookup."""
    key = (stable_hash(prompt.text), prompt.topic)
    if key in embedder._cache:
        return embedder._cache[key]
    token_vec = embedder.embed_text(prompt.text)
    topic_vec = embedder._topic_vector(prompt.topic)
    mixed = (1.0 - embedder.topic_weight) * token_vec + embedder.topic_weight * topic_vec
    embedded = embedder._normalize(mixed)
    embedder._cache[key] = embedded
    return embedded


def legacy_pickscore_best(model, prompt) -> float:
    """Seed best_score: re-hash the prompt text on every lookup."""
    key = stable_hash(prompt.text)
    if key not in model._best_cache:
        rng = model._prompt_rng(prompt, "best")
        model._best_cache[key] = float(np.clip(rng.normal(21.5, 0.9), 18.5, 24.5))
    return model._best_cache[key]


def legacy_pickscore_tolerance(model, prompt, strategy=None):
    from repro.models.zoo import Strategy

    strategy = Strategy(strategy if strategy is not None else Strategy.AC)
    key = (stable_hash(prompt.text), strategy)
    if key not in model._tolerance_cache:
        rng = model._prompt_rng(prompt, f"tolerance-{strategy.value}")
        max_rank = model.num_levels - 1
        permissiveness = 0.5 if strategy is Strategy.AC else 0.0
        raw = (1.0 - prompt.complexity) * max_rank + permissiveness
        noisy = raw + rng.normal(0.0, model.tolerance_noise)
        model._tolerance_cache[key] = int(np.clip(round(noisy), 0, max_rank))
    return model._tolerance_cache[key]


def legacy_pickscore_score(model, prompt, strategy, rank) -> float:
    """Seed score: per-call text hashing and scalar np.clip dispatch."""
    from repro.models.zoo import Strategy

    strategy = Strategy(strategy)
    if rank < 0 or rank >= model.num_levels:
        raise ValueError(f"rank {rank} outside [0, {model.num_levels - 1}]")
    key = (stable_hash(prompt.text), strategy, rank)
    if key in model._score_cache:
        return model._score_cache[key]
    best = legacy_pickscore_best(model, prompt)
    tolerance = legacy_pickscore_tolerance(model, prompt, strategy)
    rng = model._prompt_rng(prompt, f"score-{strategy.value}-{rank}")
    if rank <= tolerance:
        factor = 0.955 + (1.0 - 0.955) * rng.random()
        score = best * factor
    else:
        gap = rank - tolerance
        degradation = 0.055 * gap ** 1.3
        jitter = rng.normal(0.0, 0.01)
        factor = np.clip(0.9 - degradation + jitter, 0.45, 0.9)
        score = best * float(factor)
    model._score_cache[key] = float(score)
    return float(score)


def legacy_featurize(featurizer, prompt) -> np.ndarray:
    """Seed featurize: recompute the full feature vector on every call."""
    from repro.prompts.generator import Prompt

    text = prompt.text if isinstance(prompt, Prompt) else str(prompt)
    structural = featurizer._structural_features(text)
    if featurizer.hashed_dim == 0:
        return structural
    hashed = featurizer._hashed_features(text)
    return np.concatenate([structural, hashed])


def legacy_sample_target(shift_map, affinity_rank, rng) -> int:
    """Seed PASM sampling: ``Generator.choice`` re-derives the CDF per call."""
    row = shift_map.matrix[affinity_rank]
    return int(rng.choice(len(row), p=row / row.sum()))
