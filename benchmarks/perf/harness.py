"""Hot-path perf harness: times the optimised implementations against the
seed-faithful references in :mod:`benchmarks.perf.legacy`, on this machine,
in one process — so every "speedup" in ``BENCH_*.json`` is a genuine
before/after pair rather than a cross-machine comparison.

Run via ``python benchmarks/perf/run_perf.py``.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass

import numpy as np

from benchmarks.perf import legacy
from repro.cache.network import NetworkCondition, NetworkModel
from repro.cache.vectordb import VectorDatabase
from repro.cluster.requests import CompletedRequest, Request
from repro.core.solver import AllocationSolver
from repro.metrics.collector import MetricsCollector
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.prompts.embedding import PromptEmbedder
from repro.simulation.engine import SimulationEngine


@dataclass(frozen=True)
class Preset:
    """Workload sizes for one harness run."""

    name: str
    vdb_entries: int
    vdb_queries: int
    hnsw_entries: int
    collector_completions: int
    solver_rounds: int
    engine_events: int
    network_lookups: int
    embed_lookups: int
    e2e_trace_minutes: int


PRESETS = {
    # CI smoke preset: finishes in well under a minute.
    "small": Preset(
        name="small",
        vdb_entries=20_000,
        vdb_queries=50,
        hnsw_entries=5_000,
        collector_completions=20_000,
        solver_rounds=60,
        engine_events=100_000,
        network_lookups=20_000,
        embed_lookups=2_000,
        e2e_trace_minutes=12,
    ),
    # The numbers that go into the checked-in BENCH_PR3.json.
    "full": Preset(
        name="full",
        vdb_entries=100_000,
        vdb_queries=100,
        hnsw_entries=50_000,
        collector_completions=100_000,
        solver_rounds=200,
        engine_events=1_000_000,
        network_lookups=100_000,
        embed_lookups=10_000,
        e2e_trace_minutes=45,
    ),
}


def _timed(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _clustered_vectors(n: int, dim: int, clusters: int, seed: int) -> np.ndarray:
    """Topic-clustered unit vectors shaped like prompt embeddings."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assignments = rng.integers(0, clusters, size=n)
    vectors = centers[assignments] + 0.35 * rng.normal(size=(n, dim))
    return vectors / np.linalg.norm(vectors, axis=1, keepdims=True)


# --------------------------------------------------------------------------- #
# 1. Vector search
# --------------------------------------------------------------------------- #


def bench_vectordb(preset: Preset) -> dict:
    dim = 64
    vectors = _clustered_vectors(preset.vdb_entries, dim, clusters=24, seed=1)
    queries = _clustered_vectors(preset.vdb_queries, dim, clusters=24, seed=2)
    db = VectorDatabase(dim=dim, index_type="flat")
    for vector in vectors:
        db.upsert(vector)
    # Prime the legacy norms cache outside the timed region (the seed kept
    # norms incrementally, so rebuilding them is not part of its query cost).
    legacy.legacy_flat_search(db, queries[0])

    def run_optimized():
        for query in queries:
            db.search(query, top_k=1)

    def run_legacy():
        for query in queries:
            legacy.legacy_flat_search(db, query, top_k=1)

    optimized_s = _timed(run_optimized)
    legacy_s = _timed(run_legacy)
    agree = sum(
        1
        for query in queries
        if db.search(query, top_k=1)[0].key == legacy.legacy_flat_search(db, query)[0][0]
    )
    return {
        "entries": preset.vdb_entries,
        "queries": preset.vdb_queries,
        "legacy_s": legacy_s,
        "optimized_s": optimized_s,
        "speedup": legacy_s / optimized_s,
        "top1_agreement": agree / preset.vdb_queries,
    }


def bench_hnsw(preset: Preset) -> dict:
    """HNSW vs flat: recall@1 / query-latency trade-off at one scale."""
    dim = 64
    n = preset.hnsw_entries
    vectors = _clustered_vectors(n, dim, clusters=24, seed=3)
    queries = _clustered_vectors(200, dim, clusters=24, seed=4)
    flat = VectorDatabase(dim=dim, index_type="flat")
    hnsw = VectorDatabase(dim=dim, index_type="hnsw")
    for vector in vectors:
        flat.upsert(vector)
    build_start = time.perf_counter()
    for vector in vectors:
        hnsw.upsert(vector)
    build_s = time.perf_counter() - build_start

    flat_s = _timed(lambda: [flat.search(q, top_k=1) for q in queries], repeats=2)
    hnsw_s = _timed(lambda: [hnsw.search(q, top_k=1) for q in queries], repeats=2)
    recall = sum(
        1 for q in queries if hnsw.search(q, top_k=1)[0].key == flat.search(q, top_k=1)[0].key
    ) / len(queries)
    # Flat cost grows linearly with entries while the graph search is
    # ~flat in n, so the break-even index size extrapolates directly.
    crossover = int(n * hnsw_s / flat_s) if hnsw_s > flat_s else n
    return {
        "entries": n,
        "queries": len(queries),
        "flat_query_ms": 1e3 * flat_s / len(queries),
        "hnsw_query_ms": 1e3 * hnsw_s / len(queries),
        "hnsw_build_s": build_s,
        "recall_at_1_vs_flat": recall,
        "speedup_vs_flat": flat_s / hnsw_s,
        "estimated_crossover_entries": crossover,
    }


# --------------------------------------------------------------------------- #
# 2. Metrics collector
# --------------------------------------------------------------------------- #


def _synthetic_completions(n: int, seed: int = 5):
    rng = np.random.default_rng(seed)
    dataset = PromptDataset.synthetic(count=64, seed=seed)
    prompts = dataset.prompts
    completions = []
    arrival = 0.0
    for i in range(n):
        arrival += float(rng.exponential(0.05))
        service = float(rng.uniform(0.4, 6.0))
        queue = float(rng.exponential(2.5))
        request = Request(
            request_id=i,
            prompt=prompts[i % len(prompts)],
            arrival_time_s=arrival,
            strategy=Strategy.AC,
            predicted_rank=0,
            assigned_rank=0,
        )
        completions.append(
            CompletedRequest(
                request=request,
                worker_id=i % 8,
                start_time_s=arrival + queue,
                completion_time_s=arrival + queue + service,
                effective_rank=0,
                service_time_s=service,
            )
        )
    scores = rng.uniform(18.0, 22.0, size=n)
    bests = scores + rng.uniform(0.0, 1.5, size=n)
    return completions, scores, bests


def _summary_pass(collector) -> tuple:
    return (
        collector.slo_violation_ratio(),
        collector.effective_accuracy(),
        collector.mean_pickscore(),
        collector.mean_relative_quality(),
        collector.latency_percentile(50),
        collector.latency_percentile(99),
        len(collector.minute_series()),
    )


def bench_collector(preset: Preset) -> dict:
    n = preset.collector_completions
    completions, scores, bests = _synthetic_completions(n)

    def fill(collector):
        for completed, score, best in zip(completions, scores, bests):
            collector.record_arrival(completed.request.arrival_time_s)
            collector.record_completion(completed, float(score), float(best))
        return collector

    legacy_collector = fill(legacy.LegacyMetricsCollector())
    new_collector = fill(MetricsCollector())

    legacy_s = _timed(lambda: _summary_pass(legacy_collector))
    optimized_s = _timed(lambda: _summary_pass(new_collector))
    results_match = _summary_pass(legacy_collector) == _summary_pass(new_collector)

    # Memory: bytes the collector keeps ALIVE after recording n completions,
    # including the per-request object graphs its design pins (the seed's
    # sample list holds every CompletedRequest; the lean columnar collector
    # lets them be freed).  Completions are allocated inside the traced
    # region and the external references dropped before measuring.
    def measure_retained(factory):
        gc.collect()
        tracemalloc.start()
        collector = factory()
        completed_list, score_arr, best_arr = _synthetic_completions(n, seed=11)
        for completed, score, best in zip(completed_list, score_arr, best_arr):
            collector.record_arrival(completed.request.arrival_time_s)
            collector.record_completion(completed, float(score), float(best))
        del completed_list, score_arr, best_arr
        gc.collect()
        retained, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del collector
        return retained

    legacy_bytes = measure_retained(legacy.LegacyMetricsCollector)
    columnar_bytes = measure_retained(lambda: MetricsCollector(retain_completed=False))
    return {
        "completions": n,
        "legacy_s": legacy_s,
        "optimized_s": optimized_s,
        "speedup": legacy_s / optimized_s,
        "results_match": bool(results_match),
        "legacy_retained_mib": legacy_bytes / 2**20,
        "columnar_retained_mib": columnar_bytes / 2**20,
        "memory_ratio": legacy_bytes / max(columnar_bytes, 1),
    }


# --------------------------------------------------------------------------- #
# 3. Solver
# --------------------------------------------------------------------------- #


def bench_solver(preset: Preset) -> dict:
    quality = np.array([21.0, 20.5, 20.0, 19.0, 18.0, 16.0])
    peak = np.array([14.3, 15.7, 17.5, 19.7, 22.6, 26.5])
    rng = np.random.default_rng(6)
    # A recalibration-shaped target stream: mostly repeats (steady load /
    # autoscaler what-if probes) with occasional drift.
    distinct = rng.uniform(20.0, 200.0, size=max(preset.solver_rounds // 10, 1))
    targets = [float(distinct[i % len(distinct)]) for i in range(preset.solver_rounds)]
    unique_targets = [float(t) for t in rng.uniform(20.0, 200.0, size=preset.solver_rounds)]

    legacy_solver = legacy.LegacySolver()
    legacy_s = _timed(
        lambda: [legacy_solver.solve(t, quality, peak, 8) for t in targets], repeats=1
    )

    def cached_run():
        solver = AllocationSolver()
        for target in targets:
            solver.solve(target, quality, peak, 8)

    def cold_run():
        solver = AllocationSolver()
        for target in unique_targets:
            solver.solve(target, quality, peak, 8)

    cached_s = _timed(cached_run, repeats=2)
    cold_s = _timed(cold_run, repeats=2)
    return {
        "rounds": preset.solver_rounds,
        "num_workers": 8,
        "num_levels": 6,
        "legacy_s": legacy_s,
        "optimized_s": cached_s,
        "speedup": legacy_s / cached_s,
        "vectorized_cold_s": cold_s,
        "vectorized_cold_speedup": legacy_s * (len(unique_targets) / len(targets)) / cold_s,
    }


# --------------------------------------------------------------------------- #
# 4. Simulation engine
# --------------------------------------------------------------------------- #


def bench_engine(preset: Preset) -> dict:
    n = preset.engine_events

    def drive(engine_cls):
        engine = engine_cls(seed=0)
        rng = np.random.default_rng(7)
        times = np.cumsum(rng.exponential(0.01, size=n // 2))

        def chain(e, budget=[n // 2]):
            if budget[0] > 0:
                budget[0] -= 1
                e.schedule_in(0.013, chain)

        for t in times[: n // 4]:
            engine.schedule_at(float(t), lambda e: None)
        engine.schedule_at(0.0, chain)
        pending_probes = 0
        while engine.step():
            if engine.events_processed % 10_000 == 0:
                pending_probes += engine.pending_events
        for t in times[n // 4 :]:
            engine.schedule_at(float(t) + engine.now, lambda e: None)
        engine.run()
        return engine.events_processed

    legacy_s = _timed(lambda: drive(legacy.LegacySimulationEngine), repeats=1)
    optimized_s = _timed(lambda: drive(SimulationEngine), repeats=1)
    return {
        "events": n,
        "legacy_s": legacy_s,
        "optimized_s": optimized_s,
        "speedup": legacy_s / optimized_s,
    }


# --------------------------------------------------------------------------- #
# 5. Network condition lookup + prompt embedding
# --------------------------------------------------------------------------- #


def bench_network(preset: Preset) -> dict:
    network = NetworkModel(seed=0)
    rng = np.random.default_rng(8)
    for _ in range(50):
        start = float(rng.uniform(0, 5000))
        network.schedule_condition(
            start, start + float(rng.uniform(10, 120)), NetworkCondition.CONGESTED
        )
    times = rng.uniform(0, 6000, size=preset.network_lookups)
    network.condition_at(0.0)  # build the segment timeline outside the timing

    legacy_s = _timed(lambda: [legacy.legacy_condition_at(network, t) for t in times])
    optimized_s = _timed(lambda: [network.condition_at(t) for t in times])
    mismatches = sum(
        1
        for t in times[:2000]
        if network.condition_at(t) is not legacy.legacy_condition_at(network, t)
    )
    return {
        "windows": 50,
        "lookups": preset.network_lookups,
        "legacy_s": legacy_s,
        "optimized_s": optimized_s,
        "speedup": legacy_s / optimized_s,
        "mismatches": mismatches,
    }


def bench_embedder(preset: Preset) -> dict:
    prompts = PromptDataset.synthetic(count=500, seed=9).prompts
    lookups = [prompts[i % len(prompts)] for i in range(preset.embed_lookups)]

    legacy_embedder = PromptEmbedder(dim=64)
    optimized_embedder = PromptEmbedder(dim=64)
    legacy_s = _timed(lambda: [legacy.legacy_embed(legacy_embedder, p) for p in lookups])
    optimized_s = _timed(lambda: [optimized_embedder.embed(p) for p in lookups])

    batch_embedder = PromptEmbedder(dim=64)
    batch_s = _timed(lambda: batch_embedder.embed_batch(prompts), repeats=1)
    reference = np.stack([optimized_embedder.embed(p) for p in prompts])
    batch_matches = bool(np.array_equal(batch_embedder.embed_batch(prompts), reference))
    return {
        "distinct_prompts": len(prompts),
        "lookups": preset.embed_lookups,
        "legacy_s": legacy_s,
        "optimized_s": optimized_s,
        "speedup": legacy_s / optimized_s,
        "warm_batch_s": batch_s,
        "batch_matches_single": batch_matches,
    }


# --------------------------------------------------------------------------- #
# 6. End-to-end fig16-style run
# --------------------------------------------------------------------------- #


def _build_argus(training):
    from benchmarks.helpers import bench_config
    from repro.experiments.runner import build_system

    return build_system("argus", config=bench_config(), training_dataset=training)


def bench_end_to_end(preset: Preset) -> dict:
    """Argus on a fig16-style trace, optimised stack vs seed hot paths.

    The legacy variant swaps the seed implementations back in at the same
    call sites (engine, collector, solver enumeration, vector search,
    embed, condition lookup) and replays the identical seeded workload.
    """
    from unittest import mock

    from benchmarks.helpers import bench_training_dataset
    from repro.experiments.runner import ExperimentRunner
    from repro.workloads.traces import TraceLibrary

    minutes = preset.e2e_trace_minutes
    trace = TraceLibrary(seed=0).twitter_like(duration_minutes=minutes)
    training = bench_training_dataset()

    def legacy_search(self, query, top_k=1):
        from repro.cache.vectordb import SearchResult

        hits = legacy.legacy_flat_search(self, query, top_k=top_k)
        return [
            SearchResult(key=key, similarity=sim, payload=self._payloads[key])
            for key, sim in hits
        ]

    def legacy_patches():
        from repro.core.oda import ShiftMap
        from repro.prompts.features import PromptFeaturizer
        from repro.quality.pickscore import PickScoreModel

        return [
            mock.patch.object(ShiftMap, "sample_target", legacy.legacy_sample_target),
            mock.patch("repro.core.base.SimulationEngine", legacy.LegacySimulationEngine),
            mock.patch("repro.core.base.MetricsCollector", legacy.LegacyMetricsCollector),
            mock.patch.object(VectorDatabase, "search", legacy_search),
            mock.patch.object(
                PromptEmbedder, "embed", lambda self, p: legacy.legacy_embed(self, p)
            ),
            mock.patch.object(NetworkModel, "condition_at", legacy.legacy_condition_at),
            mock.patch.object(PickScoreModel, "score", legacy.legacy_pickscore_score),
            mock.patch.object(PickScoreModel, "best_score", legacy.legacy_pickscore_best),
            mock.patch.object(
                PickScoreModel, "tolerance_rank", legacy.legacy_pickscore_tolerance
            ),
            mock.patch.object(
                PromptFeaturizer, "featurize", legacy.legacy_featurize
            ),
        ]

    # System build (offline classifier training / profiling) and dataset
    # generation are identical work in both variants; the timed region is
    # the serving run itself, which is what the hot-path work targets.
    runner = ExperimentRunner(seed=0, dataset_size=1500)
    dataset = runner.make_dataset()

    optimized_system = _build_argus(training)
    gc.collect()
    start = time.perf_counter()
    optimized_result = runner.run(optimized_system, trace, dataset=dataset)
    optimized_s = time.perf_counter() - start

    patches = legacy_patches()
    for patch in patches:
        patch.start()
    try:
        legacy_system = _build_argus(training)
        legacy_system.allocator.solver = legacy.LegacySolver()
        gc.collect()
        start = time.perf_counter()
        legacy_result = runner.run(legacy_system, trace, dataset=dataset)
        legacy_s = time.perf_counter() - start
    finally:
        for patch in patches:
            patch.stop()

    new_row = optimized_result.summary.as_row()
    old_row = legacy_result.summary.as_row()
    return {
        "trace_minutes": minutes,
        "total_completions": optimized_result.summary.total_completions,
        "legacy_s": legacy_s,
        "optimized_s": optimized_s,
        "speedup": legacy_s / optimized_s,
        "results_match": new_row == old_row,
        "summary_row": new_row,
    }


ALL_BENCHMARKS = {
    "vectordb_flat_search": bench_vectordb,
    "vectordb_hnsw_tradeoff": bench_hnsw,
    "metrics_summary": bench_collector,
    "solver_recalibration": bench_solver,
    "engine_events": bench_engine,
    "network_condition": bench_network,
    "prompt_embedding": bench_embedder,
    "end_to_end_fig16": bench_end_to_end,
}
