"""Compare a fresh perf-harness run against a checked-in baseline.

Speedup *ratios* (optimised vs legacy, measured in the same process) are
compared rather than absolute wall times, so the check is stable across CI
machines of different speeds: a real regression in an optimised path shows
up as its measured speedup collapsing relative to the baseline's.

Usage::

    python benchmarks/perf/check_regression.py current.json baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys

#: A current speedup may be up to this factor worse than baseline before the
#: check fails (CI noise on shared runners is real; a genuine O(n) regression
#: collapses the ratio far more than 2x).
TOLERANCE = 2.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = parser.parse_args(argv)

    with open(args.current) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    failures = []
    for name, baseline_bench in baseline.get("benchmarks", {}).items():
        baseline_speedup = baseline_bench.get("speedup")
        current_bench = current.get("benchmarks", {}).get(name)
        if baseline_speedup is None or current_bench is None:
            continue
        current_speedup = current_bench.get("speedup", 0.0)
        floor = baseline_speedup / args.tolerance
        status = "ok" if current_speedup >= floor else "REGRESSION"
        print(
            f"{name:<28s} baseline {baseline_speedup:7.2f}x  "
            f"current {current_speedup:7.2f}x  floor {floor:6.2f}x  {status}"
        )
        if current_speedup < floor:
            failures.append(name)

    for name, bench in current.get("benchmarks", {}).items():
        if bench.get("results_match") is False:
            print(f"{name:<28s} RESULTS MISMATCH between legacy and optimised paths")
            failures.append(name)

    if failures:
        print(f"\nFAILED: {len(failures)} benchmark(s) regressed: {', '.join(failures)}")
        return 1
    print("\nall perf checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
