"""Capture seeded fig16-style RunSummary fingerprints.

Run on any revision to dump every RunSummary field (full float repr) to
JSON; diffing two captures verifies that performance work did not change
simulation results bit-for-bit::

    PYTHONPATH=src:. python benchmarks/perf/capture_summary.py out.json
"""

from __future__ import annotations

import dataclasses
import json
import sys

from benchmarks.helpers import BENCH_TRACE_MINUTES, bench_config, bench_training_dataset
from repro.experiments.runner import ExperimentRunner, build_system
from repro.workloads.traces import TraceLibrary


def capture(systems=("argus", "pac"), trace_names=("twitter", "bursty")) -> dict:
    library = TraceLibrary(seed=0)
    traces = {
        "twitter": library.twitter_like(duration_minutes=BENCH_TRACE_MINUTES),
        "bursty": library.bursty(duration_minutes=BENCH_TRACE_MINUTES),
        "sysx": library.sysx_like(duration_minutes=BENCH_TRACE_MINUTES),
    }
    runner = ExperimentRunner(seed=0, dataset_size=1500, drain_s=120.0)
    training = bench_training_dataset()
    out: dict[str, dict] = {}
    for trace_name in trace_names:
        for system_name in systems:
            system = build_system(
                system_name, config=bench_config(), training_dataset=training
            )
            result = runner.run(system, traces[trace_name])
            row = {
                key: (value.hex() if isinstance(value, float) else value)
                for key, value in dataclasses.asdict(result.summary).items()
            }
            out[f"{trace_name}/{system_name}"] = row
    return out


if __name__ == "__main__":
    path = sys.argv[1] if len(sys.argv) > 1 else "summary_fingerprint.json"
    data = capture()
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    print(f"wrote {len(data)} summaries to {path}")
