"""Cache-tier search benchmark: sharded fan-out vs a single flat index.

Builds one corpus of unit embeddings, loads it twice — into an N-node
:class:`~repro.cache.tier.CacheTier` (consistent-hash placement, per-node
bucket-contiguous coarse-quantised indexes) and into one flat contiguous
matrix scanned by brute force (the seed tree's single-index search, at its
numpy-optimal best) — and times the same query stream through both.

The headline claim is the fan-out speedup at >= 400k entries (the ``full``
preset): the tier must answer >= 4x faster than the flat scan while agreeing
with it on the nearest stored entry.  Correctness is gated, not sampled:

* every near-duplicate query (the cache's actual workload — re-served
  prompts query their own stored embedding) must return the same key as
  the flat argmax at >= ``AGREEMENT_FLOOR`` rate, and
* every novel query must reach the same hit/miss outcome as the flat scan
  at the cache's similarity threshold: below it, *which* sub-threshold
  neighbour a probe surfaces is irrelevant — both paths miss — so coarse
  quantisation is only a defect when it flips an outcome.

Usage::

    PYTHONPATH=src:. python benchmarks/perf/run_cache_tier.py \
        --preset full --output BENCH_PR10.json     # the checked-in run
    PYTHONPATH=src:. python benchmarks/perf/run_cache_tier.py \
        --preset small --output BENCH_cache_ci.json  # CI smoke (seconds)

Exits non-zero when a correctness check fails, or when the ``full`` preset
misses the 4x headline; ``check_regression.py`` gates the ``small`` ratio
against the checked-in baseline with its standard tolerance.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time

import numpy as np

from repro.cache.tier import CacheTier

PRESETS = {
    "small": {"entries": 60_000, "queries": 400},
    "full": {"entries": 400_000, "queries": 1_000},
}

#: Near-duplicate queries must agree with the flat argmax at least this often.
AGREEMENT_FLOOR = 0.98
#: The PR's headline: fan-out search at the full corpus size vs flat scan.
HEADLINE_SPEEDUP = 4.0

DIM = 64
SHARDS = 8
REPEATS = 3


def _unit(rows: np.ndarray) -> np.ndarray:
    return rows / np.linalg.norm(rows, axis=1, keepdims=True)


def _build_corpus(entries: int, seed: int) -> tuple[list[str], np.ndarray]:
    rng = np.random.default_rng(seed)
    vectors = _unit(rng.normal(size=(entries, DIM)))
    keys = [f"p{i}" for i in range(entries)]
    return keys, vectors


def _build_queries(
    vectors: np.ndarray, count: int, seed: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(near-duplicate queries, their target rows, novel queries)."""
    rng = np.random.default_rng(seed + 1)
    targets = rng.integers(0, len(vectors), size=count)
    near = _unit(vectors[targets] + 0.01 * rng.normal(size=(count, DIM)))
    novel = _unit(rng.normal(size=(count // 4, DIM)))
    return near, targets, novel


def _time_flat(matrix: np.ndarray, queries: np.ndarray) -> tuple[float, list[int]]:
    best = None
    elapsed = float("inf")
    for _ in range(REPEATS):
        gc.collect()
        start = time.perf_counter()
        hits = [int(np.argmax(matrix @ q)) for q in queries]
        elapsed = min(elapsed, time.perf_counter() - start)
        best = hits
    return elapsed, best


def _time_tier(tier: CacheTier, queries: np.ndarray) -> tuple[float, list[tuple]]:
    best = None
    elapsed = float("inf")
    for _ in range(REPEATS):
        gc.collect()
        start = time.perf_counter()
        hits = [tier.fanout_search(q, top_k=1) for q in queries]
        elapsed = min(elapsed, time.perf_counter() - start)
        best = hits
    return elapsed, best


def run_benchmark(preset: str, seed: int) -> dict:
    spec = PRESETS[preset]
    entries, query_count = spec["entries"], spec["queries"]

    print(f"[cache_tier_search] building {entries} entries ...", flush=True)
    keys, vectors = _build_corpus(entries, seed)
    near, targets, novel = _build_queries(vectors, query_count, seed)

    build_start = time.perf_counter()
    tier = CacheTier(shards=SHARDS, replication=0, seed=seed)
    tier.bulk_load(keys, vectors)
    build_s = time.perf_counter() - build_start
    stats = tier.tier_stats()
    assert stats["entries"] == entries

    all_queries = np.concatenate([near, novel])
    print(
        f"[cache_tier_search] timing {len(all_queries)} queries "
        f"(flat scan vs {SHARDS}-shard fan-out, best of {REPEATS}) ...",
        flush=True,
    )
    flat_s, flat_hits = _time_flat(vectors, all_queries)
    tier_s, tier_hits = _time_tier(tier, all_queries)

    failures: list[str] = []
    agree = sum(
        1
        for i in range(len(near))
        if tier_hits[i] and tier_hits[i][0][0] == f":p{flat_hits[i]}"
    )
    agreement = agree / len(near)
    if agreement < AGREEMENT_FLOOR:
        failures.append(
            f"near-duplicate agreement {agreement:.4f} below {AGREEMENT_FLOOR}"
        )
    threshold = tier.similarity_threshold
    recall_gap = 0.0
    outcome_flips = 0
    for offset in range(len(novel)):
        i = len(near) + offset
        flat_sim = float(vectors[flat_hits[i]] @ all_queries[i])
        tier_sim = tier_hits[i][0][1] if tier_hits[i] else -1.0
        recall_gap = max(recall_gap, flat_sim - tier_sim)
        if (flat_sim >= threshold) != (tier_sim >= threshold):
            outcome_flips += 1
    if outcome_flips:
        failures.append(
            f"{outcome_flips} novel queries flipped hit/miss vs the flat scan"
        )
    # Placement sanity: consistent hashing must spread primaries evenly
    # enough that no node degenerates back towards the flat scan.
    loads = [row["entries"] for row in stats["per_shard"].values()]
    if max(loads) > 2.5 * entries / SHARDS:
        failures.append(f"ring imbalance: heaviest shard holds {max(loads)} entries")

    speedup = flat_s / tier_s
    print(
        f"[cache_tier_search] flat {flat_s:.3f}s vs tier {tier_s:.3f}s "
        f"= {speedup:.2f}x (agreement {agreement:.4f}, "
        f"recall gap {recall_gap:.4f})",
        flush=True,
    )
    return {
        "entries": entries,
        "shards": SHARDS,
        "dim": DIM,
        "queries": int(len(all_queries)),
        "build_s": build_s,
        "flat_scan_s": flat_s,
        "fanout_s": tier_s,
        "per_query_flat_us": 1e6 * flat_s / len(all_queries),
        "per_query_fanout_us": 1e6 * tier_s / len(all_queries),
        "agreement": agreement,
        "recall_gap": recall_gap,
        "shard_loads": loads,
        "checks_failed": failures,
        "speedup": speedup,
        "results_match": not failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="full")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_PR10.json")
    args = parser.parse_args(argv)

    bench = run_benchmark(args.preset, args.seed)
    failures = list(bench["checks_failed"])
    if args.preset == "full" and bench["speedup"] < HEADLINE_SPEEDUP:
        failures.append(
            f"full-preset speedup {bench['speedup']:.2f}x below the "
            f"{HEADLINE_SPEEDUP}x headline"
        )

    payload = {
        "meta": {
            "pr": "PR10",
            "preset": args.preset,
            "seed": args.seed,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "benchmarks": {"cache_tier_search": bench},
        "claims": {"cache_tier_search_speedup": bench["speedup"]},
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    if failures:
        print("FAILED: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
