"""Run the hot-path perf harness and write a ``BENCH_*.json`` trajectory file.

Usage::

    PYTHONPATH=src:. python benchmarks/perf/run_perf.py                # full
    PYTHONPATH=src:. python benchmarks/perf/run_perf.py --preset small
    PYTHONPATH=src:. python benchmarks/perf/run_perf.py --output BENCH_PR3.json

Each benchmark times the optimised implementation against the seed-faithful
reference from :mod:`benchmarks.perf.legacy` in the same process, so the
reported speedups are honest same-machine before/after pairs.
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import sys
import time

import numpy as np

from benchmarks.perf.harness import ALL_BENCHMARKS, PRESETS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="full")
    parser.add_argument("--output", default="BENCH_PR3.json")
    parser.add_argument(
        "--only",
        action="append",
        choices=sorted(ALL_BENCHMARKS),
        help="run a subset of benchmarks (repeatable)",
    )
    args = parser.parse_args(argv)
    preset = PRESETS[args.preset]

    benchmarks: dict[str, dict] = {}
    for name, bench in ALL_BENCHMARKS.items():
        if args.only and name not in args.only:
            continue
        print(f"[{preset.name}] {name} ...", flush=True)
        start = time.perf_counter()
        benchmarks[name] = bench(preset)
        elapsed = time.perf_counter() - start
        speedup = benchmarks[name].get("speedup")
        suffix = f"  speedup={speedup:.2f}x" if speedup is not None else ""
        print(f"[{preset.name}] {name} done in {elapsed:.1f}s{suffix}", flush=True)

    claims = {}
    if "vectordb_flat_search" in benchmarks:
        claims["flat_search_speedup"] = benchmarks["vectordb_flat_search"]["speedup"]
    if "metrics_summary" in benchmarks:
        claims["summary_pass_speedup"] = benchmarks["metrics_summary"]["speedup"]
        claims["collector_memory_ratio"] = benchmarks["metrics_summary"]["memory_ratio"]
    if "end_to_end_fig16" in benchmarks:
        claims["end_to_end_speedup"] = benchmarks["end_to_end_fig16"]["speedup"]

    # Stamp the trajectory point from the output name (BENCH_PR6.json ->
    # "PR6") so re-running the harness for a later PR keeps the history
    # machine-readable without editing this file.
    match = re.search(r"(PR\d+)", args.output)
    payload = {
        "meta": {
            "pr": match.group(1) if match else "PR3",
            "preset": preset.name,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "benchmarks": benchmarks,
        "claims": claims,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
