"""§5.5: generation quality with classifier-driven vs random variant
selection.

Paper numbers: AC PickScore 20.8 (classifier) vs 17.6 (random), a ~15% drop;
SM 20.6 vs 18.2, a ~12% drop.  We check the direction and that the relative
drop is substantial for both strategies.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import print_table
from repro.classifier.trainer import ClassifierTrainer
from repro.models.zoo import Strategy
from repro.prompts.dataset import PromptDataset
from repro.quality.pickscore import PickScoreModel


def test_sec55_classifier_vs_random_quality(benchmark):
    pickscore = PickScoreModel(seed=0)
    trainer = ClassifierTrainer(pickscore)
    train_prompts = PromptDataset.synthetic(count=1500, seed=51).prompts
    eval_prompts = PromptDataset.synthetic(count=800, seed=52).prompts

    def compute():
        rows = []
        rng = np.random.default_rng(0)
        for strategy in (Strategy.AC, Strategy.SM):
            predictor = trainer.train(train_prompts, strategy, epochs=16, seed=0)
            classifier_scores = [
                pickscore.score(p, strategy, predictor.predict_rank(p)) for p in eval_prompts
            ]
            random_scores = [
                pickscore.score(p, strategy, int(rng.integers(0, 6))) for p in eval_prompts
            ]
            classifier_mean = float(np.mean(classifier_scores))
            random_mean = float(np.mean(random_scores))
            rows.append(
                {
                    "strategy": strategy.value,
                    "classifier_pickscore": classifier_mean,
                    "random_pickscore": random_mean,
                    "relative_drop_pct": 100.0 * (classifier_mean - random_mean) / classifier_mean,
                }
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("§5.5: classifier-driven vs random variant selection", rows)

    for row in rows:
        assert row["classifier_pickscore"] > row["random_pickscore"]
        # Paper reports drops of ~11-15%; require a clearly material drop.
        assert row["relative_drop_pct"] > 5.0
