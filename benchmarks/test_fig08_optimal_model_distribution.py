"""Fig. 8: distribution of prompts across their optimal model choices.

For both the SM variants and the AC levels, a substantial fraction of
prompts is optimally served by an approximated variant; the figure also
shows how the distribution shifts when the largest model(s) are removed.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import print_table
from repro.models.zoo import Strategy
from repro.quality.optimal import OptimalModelSelector


def test_fig08_optimal_model_distribution(benchmark, pickscore, eval_prompts):
    selector = OptimalModelSelector(pickscore)
    prompts = eval_prompts

    def compute():
        out = {}
        for strategy in (Strategy.SM, Strategy.AC):
            out[strategy] = {
                "all": selector.affinity_distribution(prompts, strategy),
                "without_m1": selector.affinity_distribution_excluding(prompts, strategy, {0}),
                "without_m1_m2": selector.affinity_distribution_excluding(
                    prompts, strategy, {0, 1}
                ),
            }
        return out

    distributions = benchmark.pedantic(compute, rounds=1, iterations=1)

    for strategy, variants in distributions.items():
        rows = []
        for scenario, dist in variants.items():
            row = {"scenario": scenario}
            row.update({f"rank{r}": float(dist[r]) for r in range(len(dist))})
            rows.append(row)
        print_table(f"Fig. 8 ({strategy.value}): fraction of prompts per optimal level", rows)

    for strategy in (Strategy.SM, Strategy.AC):
        full = distributions[strategy]["all"]
        # A substantial fraction of prompts tolerates approximation
        # (Observation 1) while a non-trivial fraction still needs the
        # largest model.
        assert full[0] < 0.5
        assert np.sum(full[3:]) > 0.3
        np.testing.assert_allclose(np.sum(full), 1.0)
        # Removing the largest model pushes its prompts onto the next levels.
        reduced = distributions[strategy]["without_m1"]
        assert reduced[0] == 0.0
        assert reduced[1] >= full[1]
