"""Table 2: model sizes and load times for the SM variants.

Also measures, in the simulator, the wall-clock (simulated) cost a worker
pays when switching between variants, which is what makes naive model
switching expensive for the baselines.
"""

from __future__ import annotations

from benchmarks.helpers import print_table
from repro.cluster.worker import Worker
from repro.models.variants import SM_VARIANTS
from repro.models.zoo import ModelZoo, Strategy
from repro.simulation.engine import SimulationEngine


def test_tab02_model_loading(benchmark):
    zoo = ModelZoo()

    def measure_switch_costs():
        engine = SimulationEngine(seed=0)
        worker = Worker(0, engine, zoo, level=zoo.exact_level(Strategy.SM))
        costs = {}
        for level in reversed(zoo.levels(Strategy.SM)):
            delay = worker.set_level(level)
            engine.run()
            costs[level.name] = delay
        return costs

    switch_costs = benchmark(measure_switch_costs)

    rows = []
    for variant in SM_VARIANTS:
        rows.append(
            {
                "model": variant.name,
                "size_gib": variant.size_gib,
                "params_billion": variant.parameters_billion,
                "load_time_s": variant.load_time_s,
                "inference_latency_s": variant.latency_a100_s,
                "measured_switch_cost_s": switch_costs.get(variant.name, 0.0),
            }
        )
    print_table("Table 2: model sizes, load times and inference latency (A100)", rows)

    # Paper values: SD-XL loads in ~9.4 s, Tiny-SD in ~2.9 s; larger models
    # load slower than smaller ones.
    assert rows[0]["load_time_s"] > rows[-1]["load_time_s"]
    assert abs(rows[0]["load_time_s"] - 9.42) < 1e-6
    # Switching onto a not-resident model costs its full load time.
    assert switch_costs["Tiny-SD"] > 0.0
