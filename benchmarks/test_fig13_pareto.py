"""Fig. 13: quality-throughput Pareto frontier across model variants,
quantised variants and AC levels.

The paper's observation: AC variants frequently lie on the Pareto frontier —
they offer better quality at similar or higher throughput than the
corresponding small/distilled models.
"""

from __future__ import annotations

from benchmarks.helpers import print_table
from repro.models.zoo import ModelZoo
from repro.quality.profiles import QualityProfiler, pareto_frontier


def test_fig13_quality_throughput_pareto(benchmark, pickscore, eval_prompts):
    zoo = ModelZoo()
    profiler = QualityProfiler(zoo, pickscore)
    prompts = eval_prompts[:1200]

    def compute():
        points = profiler.pareto_scatter(prompts)
        return points, pareto_frontier(points)

    points, frontier = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        {
            "name": p.name,
            "family": p.family,
            "throughput_ipm": p.throughput_ipm,
            "median_pickscore": p.median_pickscore,
            "on_frontier": p in frontier,
        }
        for p in sorted(points, key=lambda p: p.throughput_ipm)
    ]
    print_table("Fig. 13: quality vs throughput scatter", rows)

    assert len(points) == 18  # 6 SM + 6 quantised + 6 AC levels
    ac_frontier = sum(1 for p in frontier if p.family == "AC")
    # AC variants frequently lie on the Pareto frontier (the paper's key
    # takeaway): most AC levels are non-dominated, and AC is at least as
    # represented on the frontier as its share of the candidate pool.
    assert ac_frontier >= 4
    assert ac_frontier / len(frontier) >= 6 / 18 - 1e-9
    # At matched throughput the AC level beats the SM variant's quality for
    # the mid-range of the spectrum (e.g. K=20 vs Small-SD, K=25 vs Tiny-SD).
    by_name = {p.name: p for p in points}
    assert by_name["K=20"].median_pickscore > by_name["Small-SD"].median_pickscore
    assert by_name["K=25"].median_pickscore > by_name["Tiny-SD"].median_pickscore
    # The frontier spans both the high-quality and the high-throughput ends.
    assert max(p.throughput_ipm for p in frontier) > 20.0
    assert max(p.median_pickscore for p in frontier) > 20.0
