"""Table 3: per-component FLOPs and arithmetic intensity of the DM variants."""

from __future__ import annotations

from benchmarks.helpers import print_table
from repro.models.components import (
    MODEL_COMPONENT_PROFILES,
    arithmetic_intensity,
    total_flops_per_image,
)


def test_tab03_component_flops(benchmark):
    def build_rows():
        rows = []
        for profile in MODEL_COMPONENT_PROFILES:
            rows.append(
                {
                    "model": profile.model,
                    "component": profile.component,
                    "params_B": profile.parameters_billion,
                    "size_GiB": profile.size_gib,
                    "flops_B": profile.flops_billion,
                    "arith_intensity": profile.arithmetic_intensity,
                    "invocations": profile.invocations_per_image,
                }
            )
        return rows

    rows = benchmark(build_rows)
    print_table("Table 3: component FLOPs and arithmetic intensity", rows)

    summary = [
        {
            "model": model,
            "total_flops_B_per_image": total_flops_per_image(model),
            "image_arith_intensity": arithmetic_intensity(model),
        }
        for model in ("Tiny-SD", "Small-SD", "SD-2.0", "SD-XL")
    ]
    print_table("Table 3 (derived): whole-image totals", summary)

    # The UNet dominates per-image FLOPs and SD-XL is by far the heaviest.
    assert summary[-1]["total_flops_B_per_image"] > 5 * summary[0]["total_flops_B_per_image"]
