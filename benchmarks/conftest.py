"""Shared fixtures for the benchmark suite."""

from __future__ import annotations

import pytest

from benchmarks.helpers import BENCH_DATASET_SIZE, BENCH_SEED, bench_training_dataset
from repro.experiments.runner import ExperimentRunner
from repro.prompts.dataset import PromptDataset
from repro.quality.pickscore import PickScoreModel
from repro.workloads.traces import TraceLibrary


@pytest.fixture(scope="session")
def trace_library() -> TraceLibrary:
    return TraceLibrary(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(seed=BENCH_SEED, dataset_size=BENCH_DATASET_SIZE, drain_s=120.0)


@pytest.fixture(scope="session")
def training_dataset() -> PromptDataset:
    return bench_training_dataset()


@pytest.fixture(scope="session")
def eval_prompts() -> list:
    """Prompt sample used by the offline (non-serving) figure benchmarks."""
    return PromptDataset.synthetic(count=2000, seed=BENCH_SEED + 7).prompts


@pytest.fixture(scope="session")
def pickscore() -> PickScoreModel:
    return PickScoreModel(seed=BENCH_SEED)
