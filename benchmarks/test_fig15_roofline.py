"""Fig. 15: roofline placement of DMs vs traditional DL models on an A100."""

from __future__ import annotations

from benchmarks.helpers import print_table
from repro.models.roofline import RooflineModel


def test_fig15_roofline(benchmark):
    roofline = RooflineModel("A100")

    def compute():
        return roofline.full_plot()

    points = benchmark(compute)

    rows = [
        {
            "model": p.name,
            "arithmetic_intensity": p.arithmetic_intensity,
            "attainable_tflops": p.attainable_tflops,
            "compute_bound": p.compute_bound,
        }
        for p in sorted(points, key=lambda p: p.arithmetic_intensity)
    ]
    print_table(
        f"Fig. 15: roofline on A100 (ridge point = {roofline.ridge_point:.1f} FLOP/byte)", rows
    )

    by_name = {p.name: p for p in points}
    # Diffusion models sit right of the ridge point (compute-bound)...
    for dm in ("Tiny-SD", "Small-SD", "SD-2.0", "SD-XL"):
        assert by_name[dm].compute_bound
    # ...while the traditional vision models sit left of it (memory-bound).
    for traditional in ("YOLOv5n", "ResNet50", "EfficientNet-b4"):
        assert not by_name[traditional].compute_bound
