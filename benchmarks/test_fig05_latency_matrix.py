"""Fig. 5: single-image inference latency of Tiny / SD-1.5 / SD-XL across
V100, A10G and A100 GPUs."""

from __future__ import annotations

from benchmarks.helpers import print_table
from repro.models.latency import LatencyModel
from repro.models.variants import variant_by_name


def test_fig05_latency_across_gpus(benchmark):
    variants = [variant_by_name(name) for name in ("Tiny-SD", "SD-1.5", "SD-XL")]

    def build_matrix():
        return LatencyModel("A100").latency_matrix(variants)

    matrix = benchmark(build_matrix)

    rows = []
    for gpu, per_model in sorted(matrix.items()):
        row = {"gpu": gpu}
        row.update({name: latency for name, latency in per_model.items()})
        rows.append(row)
    print_table("Fig. 5: inference latency (seconds) by GPU and model", rows)

    # Shape checks from the paper: newer GPUs are faster for every model, but
    # SD-XL stays slow even on the A100 (~4.2 s) and is ~10 s on an A10G.
    for gpu in ("V100", "A10G"):
        for variant in variants:
            assert matrix[gpu][variant.name] > matrix["A100"][variant.name]
    assert 4.0 < matrix["A100"]["SD-XL"] < 4.5
    assert matrix["A10G"]["SD-XL"] > 8.0
    assert matrix["A100"]["Tiny-SD"] < matrix["A100"]["SD-XL"]
