"""Fig. 14 (and Observation 5): throughput speed-up vs batch size.

Traditional models keep gaining from batching; diffusion models plateau at
small batch sizes because they are compute-bound.
"""

from __future__ import annotations

from benchmarks.helpers import print_table
from repro.models.batching import BatchingModel

BATCH_SIZES = [1, 2, 4, 8, 16, 32]


def test_fig14_batching_speedup(benchmark):
    model = BatchingModel()

    def compute():
        return model.table(BATCH_SIZES)

    table = benchmark(compute)

    rows = []
    for name, speedups in table.items():
        row = {"model": name}
        row.update({f"batch_{b}": s for b, s in zip(BATCH_SIZES, speedups)})
        rows.append(row)
    print_table("Fig. 14: throughput speed-up vs batch size", rows)

    # Non-DM models scale well past batch 16; DMs plateau under 2x.
    assert table["YOLOv5n"][-2] > 5.0
    assert table["ResNet50"][-2] > 4.0
    for dm in ("SD-XL", "SD-2.0", "Small-SD"):
        assert table[dm][-1] < 2.0
    # SD-Tiny batches marginally better than SD-XL but still far below YOLO.
    assert table["Tiny-SD"][-1] > table["SD-XL"][-1]
    assert table["Tiny-SD"][-1] < table["YOLOv5n"][-1] / 3
