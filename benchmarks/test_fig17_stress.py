"""Fig. 17: stress test under a linearly increasing workload.

As load ramps from well below capacity to beyond the cluster's fastest
configuration, Argus keeps its throughput tracking the load and its SLO
violations low by raising approximation levels, until the accuracy-scaling
limit is reached and quality saturates at the most approximate level.

The autoscaling extension rides the same ramp (plus a descent) with the
closed-loop autoscaler enabled: served throughput must keep tracking the
offered load past the fixed fleet's AC throughput ceiling, SLO violations
must stay below the fixed-fleet run, and the fleet must scale back in (with
hysteresis) once the ramp subsides.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.helpers import bench_config, print_series, print_table
from repro.experiments.runner import build_system
from repro.models.zoo import Strategy
from repro.workloads.traces import WorkloadTrace

SYSTEMS = ["argus", "proteus", "nirvana", "clipper-ht"]
RAMP_MINUTES = 100
DESCENT_MINUTES = 40


@pytest.fixture(scope="module")
def stress_results(runner, trace_library, training_dataset):
    trace = trace_library.increasing(
        duration_minutes=RAMP_MINUTES, start_qpm=40.0, end_qpm=240.0
    )
    results = {}
    for name in SYSTEMS:
        system = build_system(name, config=bench_config(), training_dataset=training_dataset)
        results[name] = (runner.run(system, trace), system)
    return trace, results


def test_fig17_stress_ramp(benchmark, stress_results):
    trace, results = stress_results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for name, (result, _system) in results.items():
        summary = result.summary
        rows.append(
            {
                "system": summary.system,
                "served_qpm": summary.mean_served_qpm,
                "slo_violation_ratio": summary.slo_violation_ratio,
                "relative_quality": summary.mean_relative_quality,
            }
        )
    print_table("Fig. 17: stress test aggregate", rows)

    argus_result = results["argus"][0]
    print_series(
        "Fig. 17: Argus under increasing load",
        {
            "offered_qpm": argus_result.offered_qpm_series[:RAMP_MINUTES],
            "served_qpm": argus_result.served_qpm_series[:RAMP_MINUTES],
            "violation_ratio": argus_result.violation_ratio_series[:RAMP_MINUTES],
            "relative_quality": argus_result.relative_quality_series[:RAMP_MINUTES],
        },
    )


def test_fig17_claims_hold(stress_results):
    trace, results = stress_results
    argus_result, argus_system = results["argus"]
    nirvana_result, _ = results["nirvana"]
    clipper_ht_result, _ = results["clipper-ht"]

    offered = np.array(argus_result.offered_qpm_series[:RAMP_MINUTES])
    served = np.array(argus_result.served_qpm_series[:RAMP_MINUTES])
    quality = np.array(argus_result.relative_quality_series[:RAMP_MINUTES])

    # At low load every system serves everything at full quality.
    low = slice(5, 20)
    assert served[low].mean() > 0.9 * offered[low].mean()
    assert quality[low].mean() > 0.95

    # In the mid ramp Argus keeps tracking the load by approximating more,
    # which costs some quality.
    mid = slice(45, 65)
    assert served[mid].mean() > 0.9 * offered[mid].mean()
    assert quality[mid].mean() < quality[low].mean()

    # Beyond the accuracy-scaling limit throughput saturates below the
    # offered load (the horizontal-scaling signal in §6).
    end = slice(90, RAMP_MINUTES)
    assert served[end].mean() < offered[end].mean()

    # NIRVANA cannot adapt: far more SLO violations than Argus overall.
    assert nirvana_result.summary.slo_violation_ratio > 2 * max(
        argus_result.summary.slo_violation_ratio, 0.02
    )
    # Clipper-HT always runs the smallest model: lowest quality of the group.
    assert clipper_ht_result.summary.mean_relative_quality < argus_result.summary.mean_relative_quality


# --------------------------------------------------------------------- #
# Autoscaling extension: the §6 signal closed into a control loop
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def autoscale_results(runner, trace_library, training_dataset):
    """Fixed vs autoscaled Argus on the Fig. 17 ramp plus a descent."""
    ramp = trace_library.increasing(
        duration_minutes=RAMP_MINUTES, start_qpm=40.0, end_qpm=240.0
    )
    descent = tuple(float(q) for q in np.linspace(230.0, 40.0, DESCENT_MINUTES))
    trace = WorkloadTrace("increasing-updown", ramp.qpm + descent)
    results = {}
    for autoscale in (False, True):
        config = bench_config(
            autoscale_enabled=autoscale,
            max_workers=16,
            provision_delay_s=90.0,
        )
        system = build_system("argus", config=config, training_dataset=training_dataset)
        results[autoscale] = (runner.run(system, trace), system)
    return trace, results


def test_fig17_autoscaling_ramp(benchmark, autoscale_results):
    trace, results = autoscale_results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for autoscale, (result, _system) in results.items():
        summary = result.summary
        rows.append(
            {
                "fleet": "autoscaled" if autoscale else "fixed (8)",
                "served_qpm": summary.mean_served_qpm,
                "slo_violation_ratio": summary.slo_violation_ratio,
                "relative_quality": summary.mean_relative_quality,
                "fleet_peak": summary.fleet_peak_workers,
                "fleet_mean": summary.fleet_mean_workers,
                "gpu_hours": summary.gpu_hours,
                "cost_per_image": summary.cost_per_image_usd,
            }
        )
    print_table("Fig. 17 (extension): fixed vs autoscaled fleet", rows)

    scaled_result, scaled_system = results[True]
    print_series(
        "Fig. 17 (extension): autoscaled Argus through the up-down ramp",
        {
            "offered_qpm": scaled_result.offered_qpm_series[: trace.duration_minutes],
            "served_qpm": scaled_result.served_qpm_series[: trace.duration_minutes],
            "violation_ratio": scaled_result.violation_ratio_series[: trace.duration_minutes],
            "fleet_size": scaled_result.fleet_size_series[: trace.duration_minutes],
        },
    )
    if scaled_system.autoscaler is not None:
        for event in scaled_system.autoscaler.events:
            print(
                f"  t={event.time_s / 60.0:6.1f} min  {event.action:<10} "
                f"{event.delta:+d} -> {event.fleet_size:2d}  ({event.reason})"
            )


def test_fig17_autoscaler_claims_hold(autoscale_results):
    trace, results = autoscale_results
    fixed_result, fixed_system = results[False]
    scaled_result, scaled_system = results[True]

    offered = np.array(scaled_result.offered_qpm_series[: trace.duration_minutes])
    served_scaled = np.array(scaled_result.served_qpm_series[: trace.duration_minutes])
    served_fixed = np.array(fixed_result.served_qpm_series[: trace.duration_minutes])

    # The late ramp offers more than the fixed fleet's AC throughput ceiling.
    ceiling = fixed_system.zoo.max_cluster_throughput_qpm(Strategy.AC, 8)
    saturated_band = slice(90, RAMP_MINUTES)
    assert offered[saturated_band].mean() > ceiling

    # Served QPM keeps tracking the offered load past that ceiling, where
    # the fixed fleet falls behind.
    assert served_scaled[saturated_band].mean() > 0.95 * offered[saturated_band].mean()
    assert served_scaled[saturated_band].mean() > served_fixed[saturated_band].mean()

    # SLO violations stay below the fixed-fleet run.
    assert (
        scaled_result.summary.slo_violation_ratio
        < fixed_result.summary.slo_violation_ratio
    )

    # The fleet scaled out past the fixed pool and, with hysteresis, back in
    # once the descent brought load inside the smaller fleet's ceiling.
    assert scaled_result.summary.fleet_peak_workers > 8
    assert scaled_result.summary.workers_added > 0
    assert scaled_result.summary.workers_retired > 0
    assert scaled_system.autoscaler is not None
    assert scaled_system.autoscaler.num_scale_ins > 0
    assert scaled_system.cluster.fleet_size < scaled_result.summary.fleet_peak_workers

    # The fixed baseline stayed fixed (the paper-faithful comparison).
    assert fixed_result.summary.fleet_peak_workers == 8
    assert fixed_result.summary.workers_added == 0
