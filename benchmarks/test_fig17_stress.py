"""Fig. 17: stress test under a linearly increasing workload.

As load ramps from well below capacity to beyond the cluster's fastest
configuration, Argus keeps its throughput tracking the load and its SLO
violations low by raising approximation levels, until the accuracy-scaling
limit is reached and quality saturates at the most approximate level.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.helpers import bench_config, print_series, print_table
from repro.experiments.runner import build_system

SYSTEMS = ["argus", "proteus", "nirvana", "clipper-ht"]
RAMP_MINUTES = 100


@pytest.fixture(scope="module")
def stress_results(runner, trace_library, training_dataset):
    trace = trace_library.increasing(
        duration_minutes=RAMP_MINUTES, start_qpm=40.0, end_qpm=240.0
    )
    results = {}
    for name in SYSTEMS:
        system = build_system(name, config=bench_config(), training_dataset=training_dataset)
        results[name] = (runner.run(system, trace), system)
    return trace, results


def test_fig17_stress_ramp(benchmark, stress_results):
    trace, results = stress_results
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for name, (result, _system) in results.items():
        summary = result.summary
        rows.append(
            {
                "system": summary.system,
                "served_qpm": summary.mean_served_qpm,
                "slo_violation_ratio": summary.slo_violation_ratio,
                "relative_quality": summary.mean_relative_quality,
            }
        )
    print_table("Fig. 17: stress test aggregate", rows)

    argus_result = results["argus"][0]
    print_series(
        "Fig. 17: Argus under increasing load",
        {
            "offered_qpm": argus_result.offered_qpm_series[:RAMP_MINUTES],
            "served_qpm": argus_result.served_qpm_series[:RAMP_MINUTES],
            "violation_ratio": argus_result.violation_ratio_series[:RAMP_MINUTES],
            "relative_quality": argus_result.relative_quality_series[:RAMP_MINUTES],
        },
    )


def test_fig17_claims_hold(stress_results):
    trace, results = stress_results
    argus_result, argus_system = results["argus"]
    nirvana_result, _ = results["nirvana"]
    clipper_ht_result, _ = results["clipper-ht"]

    offered = np.array(argus_result.offered_qpm_series[:RAMP_MINUTES])
    served = np.array(argus_result.served_qpm_series[:RAMP_MINUTES])
    quality = np.array(argus_result.relative_quality_series[:RAMP_MINUTES])

    # At low load every system serves everything at full quality.
    low = slice(5, 20)
    assert served[low].mean() > 0.9 * offered[low].mean()
    assert quality[low].mean() > 0.95

    # In the mid ramp Argus keeps tracking the load by approximating more,
    # which costs some quality.
    mid = slice(45, 65)
    assert served[mid].mean() > 0.9 * offered[mid].mean()
    assert quality[mid].mean() < quality[low].mean()

    # Beyond the accuracy-scaling limit throughput saturates below the
    # offered load (the horizontal-scaling signal in §6).
    end = slice(90, RAMP_MINUTES)
    assert served[end].mean() < offered[end].mean()

    # NIRVANA cannot adapt: far more SLO violations than Argus overall.
    assert nirvana_result.summary.slo_violation_ratio > 2 * max(
        argus_result.summary.slo_violation_ratio, 0.02
    )
    # Clipper-HT always runs the smallest model: lowest quality of the group.
    assert clipper_ht_result.summary.mean_relative_quality < argus_result.summary.mean_relative_quality
